package fused

import (
	"math/bits"

	"fpcompress/internal/bitio"
	"fpcompress/internal/simd"
	"fpcompress/internal/transforms"
	"fpcompress/internal/wordio"
)

// Ratio64 is the fused DIFFMS64+RAZE+RARE kernel behind the windowed
// DPratio chunk pipeline (and the windowed auto mode's 64-bit ratio
// candidate). The difference+zigzag writes straight into a pooled word
// slice that RAZE's word-stream encoder consumes in place, so the DIFFMS
// byte stream never materializes; RARE must see RAZE's complete output
// (its split k depends on the whole stream), so that stage remains
// composed, reading the pooled RAZE bytes.
type Ratio64 struct {
	ref transforms.Pipeline
}

// NewRatio64 returns the fused windowed-DPratio chunk kernel.
func NewRatio64() *Ratio64 {
	return &Ratio64{ref: transforms.Pipeline{
		transforms.DiffMS{Word: wordio.W64},
		transforms.RAZE{},
		transforms.RARE{},
	}}
}

// Name implements Kernel.
func (k *Ratio64) Name() string { return "FUSED(DIFFMS64+RAZE+RARE)" }

// Pipeline implements Kernel.
func (k *Ratio64) Pipeline() transforms.Pipeline { return k.ref }

// ForwardInto implements Kernel.
func (k *Ratio64) ForwardInto(dst, src []byte) []byte {
	sw, ok := wordio.View64(src)
	if !ok {
		return k.ref.ForwardInto(dst, src)
	}
	return ratio64Forward(dst, sw, src[len(sw)*8:], nil)
}

// ForwardStatsInto is ForwardInto plus the selector gate's leading-zero
// histogram of the diff stream (the RAZE→RARE cost-model input),
// accumulated over the pooled diff words the fused pass materializes
// anyway. ok is false — with dst untouched — when the fused path is
// unavailable.
func (k *Ratio64) ForwardStatsInto(dst, src []byte, gs *GateStats) ([]byte, bool) {
	sw, ok := wordio.View64(src)
	if !ok {
		return nil, false
	}
	return ratio64Forward(dst, sw, src[len(sw)*8:], gs), true
}

// ratio64Forward is the shared fused core: diff+zigzag sw into pooled
// words, RAZE-encode them (with the verbatim tail) into pooled bytes, and
// RARE-encode that stream into dst. Byte-identical to the stage-by-stage
// DIFFMS64→RAZE→RARE pipeline.
func ratio64Forward(dst []byte, sw []uint64, tail []byte, gs *GateStats) []byte {
	dp := getBuf()
	defer putBuf(dp)
	dw, ok := wordio.View64(pooledBytes(dp, len(sw)*8))
	if !ok {
		// Pooled scratch is always 8-aligned in practice; reference math
		// for the never-taken case.
		dw = make([]uint64, len(sw))
	}
	dw = dw[:len(sw)]
	if _, okd := simd.DiffZigOr64(dw, sw, 0); !okd {
		prev := uint64(0)
		for i, v := range sw {
			dw[i] = wordio.ZigZag64(v - prev)
			prev = v
		}
	}
	if gs != nil {
		gs.Words = len(sw)
		gs.Hist = [65]int{}
		for _, z := range dw {
			gs.Hist[bits.LeadingZeros64(z)]++
		}
	}
	rp := getBuf()
	defer putBuf(rp)
	razed := transforms.AdaptiveEncodeWords((*rp)[:0], dw, tail, false)
	*rp = razed
	return transforms.RARE{}.ForwardInto(dst, razed)
}

// InverseInto implements Kernel: RARE and RAZE decode under the pipeline's
// interior stage budget through pooled scratch, and the final DIFFMS64
// prefix-sum reconstruction (already a fused one-pass kernel) writes into
// dst; the decoded length is then checked against maxDecoded exactly, as
// Pipeline.InverseInto does.
func (k *Ratio64) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	sb := stageBudget(maxDecoded)
	rp := getBuf()
	defer putBuf(rp)
	bitted, err := transforms.RARE{}.InverseInto((*rp)[:0], enc, sb)
	if err != nil {
		return nil, err
	}
	*rp = bitted
	zp := getBuf()
	defer putBuf(zp)
	diffed, err := transforms.RAZE{}.InverseInto((*zp)[:0], bitted, sb)
	if err != nil {
		return nil, err
	}
	*zp = diffed
	if maxDecoded >= 0 && len(diffed) > maxDecoded {
		return nil, corruptf("pipeline: decoded length %d exceeds budget %d", len(diffed), maxDecoded)
	}
	out, err := transforms.DiffMS{Word: wordio.W64}.InverseInto(dst, diffed, maxDecoded)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FCMRatio64 is the fused windowed-DPratio kernel, FCMW64's one-pass
// execution: FCM's table encoder (Table mode — per-chunk inputs are small
// enough that the direct-mapped table stays L1-resident) writes its
// value/distance stream into pooled scratch, and the Ratio64 core encodes
// the value half and the distance half as the two independent segments
// transforms.FCMW defines, neither materializing its DIFFMS intermediate.
// The FCM configuration is part of the kernel identity: the encoder's
// matches (and therefore the bytes) depend on it.
type FCMRatio64 struct {
	fcm transforms.FCM
	ref transforms.Pipeline
}

// NewFCMRatio64 returns the fused windowed-DPratio chunk kernel with the
// FCM pre-stage.
func NewFCMRatio64() *FCMRatio64 {
	return &FCMRatio64{
		fcm: transforms.FCM{Table: true},
		ref: transforms.Pipeline{transforms.FCMW{}},
	}
}

// Name implements Kernel.
func (k *FCMRatio64) Name() string { return "FUSED(FCMW64)" }

// Pipeline implements Kernel.
func (k *FCMRatio64) Pipeline() transforms.Pipeline { return k.ref }

// ForwardInto implements Kernel.
func (k *FCMRatio64) ForwardInto(dst, src []byte) []byte {
	fp := getBuf()
	defer putBuf(fp)
	fcmOut := k.fcm.ForwardInto((*fp)[:0], src)
	*fp = fcmOut
	fw, ok := wordio.View64(fcmOut)
	if !ok {
		// Pooled scratch is misaligned (never in practice): the composed
		// reference produces the same bytes.
		return k.ref.ForwardInto(dst, src)
	}
	// Segment A: FCM header + value array (always whole words). Segment B:
	// distance array + the chunk's verbatim tail.
	splitW := transforms.FCMWSplit(len(src)) / 8
	ap := getBuf()
	defer putBuf(ap)
	encA := ratio64Forward((*ap)[:0], fw[:splitW], nil, nil)
	*ap = encA
	dst = bitio.AppendUvarint(dst, uint64(len(encA)))
	dst = append(dst, encA...)
	return ratio64Forward(dst, fw[splitW:], fcmOut[len(fw)*8:], nil)
}

// InverseInto implements Kernel: each segment's Ratio64 stages decode
// under interior budgets into pooled scratch (FCM's value/distance stream
// is at most 2*decoded+8 bytes, within the interior headroom), then FCM's
// resolver writes the final words into dst and the decoded length is
// checked against maxDecoded exactly.
func (k *FCMRatio64) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	lenA, m := bitio.Uvarint(enc)
	if m <= 0 || lenA > uint64(len(enc)-m) {
		return nil, corruptf("fcmw: bad segment length")
	}
	sb := stageBudget(maxDecoded)
	sp := getBuf()
	defer putBuf(sp)
	stream, err := fcmwSegInverse((*sp)[:0], enc[m:m+int(lenA)], sb)
	if err != nil {
		*sp = stream
		return nil, corruptf("fcmw: value segment: %v", err)
	}
	stream, err = fcmwSegInverse(stream, enc[m+int(lenA):], sb)
	*sp = stream
	if err != nil {
		return nil, corruptf("fcmw: distance segment: %v", err)
	}
	out, err := k.fcm.InverseInto(dst, stream, sb)
	if err != nil {
		return nil, err
	}
	if maxDecoded >= 0 && len(out)-len(dst) > maxDecoded {
		return nil, corruptf("pipeline: decoded length %d exceeds budget %d", len(out)-len(dst), maxDecoded)
	}
	return out, nil
}

// fcmwSegInverse appends one FCMW segment's decode (RARE → RAZE →
// DIFFMS64) to dst under the stage budget.
func fcmwSegInverse(dst, enc []byte, sb int) ([]byte, error) {
	rp := getBuf()
	defer putBuf(rp)
	bitted, err := transforms.RARE{}.InverseInto((*rp)[:0], enc, sb)
	if err != nil {
		return dst, err
	}
	*rp = bitted
	zp := getBuf()
	defer putBuf(zp)
	diffed, err := transforms.RAZE{}.InverseInto((*zp)[:0], bitted, sb)
	if err != nil {
		return dst, err
	}
	*zp = diffed
	return transforms.DiffMS{Word: wordio.W64}.InverseInto(dst, diffed, sb)
}
