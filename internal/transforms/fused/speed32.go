package fused

import (
	"encoding/binary"
	"math/bits"

	"fpcompress/internal/bitio"
	"fpcompress/internal/simd"
	"fpcompress/internal/transforms"
	"fpcompress/internal/wordio"
)

// Speed32 is the fused DIFFMS32+MPLG32 kernel behind SPspeed (and the
// auto modes' 32-bit speed candidate). One pass over the source words
// differences, zigzags, width-scans, and bit-packs each 128-word MPLG
// subchunk through a stack tile, so the DIFFMS stream never exists outside
// registers/L1; the inverse unpacks, un-zigzags twice, and prefix-sums in
// one pass the same way.
type Speed32 struct {
	ref transforms.Pipeline
}

// NewSpeed32 returns the fused SPspeed kernel.
func NewSpeed32() *Speed32 {
	return &Speed32{ref: transforms.Pipeline{
		transforms.DiffMS{Word: wordio.W32},
		transforms.MPLG{Word: wordio.W32},
	}}
}

// Name implements Kernel.
func (k *Speed32) Name() string { return "FUSED(DIFFMS32+MPLG32)" }

// Pipeline implements Kernel.
func (k *Speed32) Pipeline() transforms.Pipeline { return k.ref }

// ForwardInto implements Kernel.
func (k *Speed32) ForwardInto(dst, src []byte) []byte {
	out, ok := k.forward(dst, src, nil)
	if !ok {
		return k.ref.ForwardInto(dst, src)
	}
	return out
}

// ForwardStatsInto is ForwardInto plus speed-wins gate statistics: the
// group ORs and diff tail the selector's exact BIT32→RZE pricing needs,
// accumulated inside the fused pass. ok is false — with dst untouched and
// gs unspecified — when the fused path is unavailable (misaligned src,
// purego build); the caller then owns the fallback.
func (k *Speed32) ForwardStatsInto(dst, src []byte, gs *GateStats) ([]byte, bool) {
	return k.forward(dst, src, gs)
}

// forward is the fused encode: per 128-word subchunk, difference+zigzag
// into a stack tile while OR-accumulating the width scan (the OR shares
// its top bit with the max, so keep and the fallback flag come out
// identically), then pack the tile with the register-resident accumulator.
// The emitted bytes match transforms.MPLG.forwardFast32 over the DIFFMS
// stream exactly: same uvarint prefix, same 7-bit subchunk headers, same
// MSB-first packing, same verbatim tail.
func (k *Speed32) forward(dst, src []byte, gs *GateStats) ([]byte, bool) {
	sw, ok := wordio.View32(src)
	if !ok {
		return nil, false
	}
	nWords := len(sw)
	tail := src[nWords*4:]
	nsub := (nWords + mplgSubchunkWords32 - 1) / mplgSubchunkWords32
	if gs != nil {
		gs.Words = nWords
		gs.Ors = gs.Ors[:0]
		gs.Tail = gs.Tail[:0]
	}
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	start0 := len(dst)
	dst = grow(dst, (nsub*7+nWords*32+7)/8+8)
	buf := dst
	bp := start0
	var acc uint64
	var nacc uint
	var tile [mplgSubchunkWords32]uint32
	prev := uint32(0)
	nb := nWords / 32 // full 32-word blocks (for gate statistics)
	for start := 0; start < nWords; start += mplgSubchunkWords32 {
		end := start + mplgSubchunkWords32
		if end > nWords {
			end = nWords
		}
		sub := sw[start:end]
		t := tile[:len(sub)]
		m, simdOK := simd.DiffZigOr32(t, sub, prev)
		if simdOK {
			prev = sub[len(sub)-1]
		} else {
			for j, v := range sub {
				z := wordio.ZigZag32(v - prev)
				prev = v
				t[j] = z
				m |= z
			}
		}
		if gs != nil {
			// Group ORs of the diff words, 4 per full 32-word block, in the
			// byte-swapped order the BIT32→RZE pricing expects. Diff words
			// past the last full block go to the tail, verbatim as bytes.
			for g := start; g+32 <= end; g += 32 {
				base := g - start
				for b := 3; b >= 0; b-- {
					q := base + b*8
					or := t[q] | t[q+1] | t[q+2] | t[q+3] |
						t[q+4] | t[q+5] | t[q+6] | t[q+7]
					gs.Ors = append(gs.Ors, or)
				}
			}
			for i := max(nb*32, start); i < end; i++ {
				gs.Tail = binary.LittleEndian.AppendUint32(gs.Tail, t[i-start])
			}
		}
		var flag uint64
		zig := false
		if m >= 1<<31 {
			// MPLG's enhancement: one extra magnitude-sign conversion.
			flag, zig = 1, true
			if m, simdOK = simd.ZigOr32(t); !simdOK {
				m = 0
				for _, z := range t {
					m |= wordio.ZigZag32(z)
				}
			}
		}
		keep := uint(32 - bits.LeadingZeros32(m))
		acc = acc<<7 | flag<<6 | uint64(keep)
		nacc += 7
		if nacc >= 32 {
			nacc -= 32
			binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
			bp += 4
			acc &= 1<<nacc - 1
		}
		if keep == 0 {
			continue
		}
		if p, a, na, ok := simd.Pack32(buf, bp, acc, nacc, t, keep, zig); ok {
			bp, acc, nacc = p, a, na
		} else if zig {
			for _, z := range t {
				acc = acc<<keep | uint64(wordio.ZigZag32(z))
				nacc += keep
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
			}
		} else {
			for _, z := range t {
				acc = acc<<keep | uint64(z)
				nacc += keep
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
			}
		}
	}
	bp = bitFinish(buf, bp, acc, nacc)
	if gs != nil {
		gs.Tail = append(gs.Tail, tail...)
	}
	return append(dst[:bp], tail...), true
}

// InverseInto implements Kernel: unpack each subchunk's words from the bit
// stream and run the un-zigzag + prefix-sum reconstruction in the same
// loop, exactly composing MPLG32's and DIFFMS32's inverses.
func (k *Speed32) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("MPLG: bad length prefix")
	}
	// The same acceptance set as the unfused chain: MPLG's intrinsic
	// MaxDecoded cap and plausibility bound, plus the pipeline's exact
	// final-length check against the caller budget.
	if declen64 > transforms.MaxDecoded {
		return nil, corruptf("MPLG: decoded length %d exceeds budget %d", declen64, transforms.MaxDecoded)
	}
	if maxDecoded >= 0 && declen64 > uint64(maxDecoded) {
		return nil, corruptf("pipeline: decoded length %d exceeds budget %d", declen64, maxDecoded)
	}
	declen := int(declen64)
	if declen > (len(enc)+2)*8*512 {
		return nil, corruptf("MPLG: decoded length %d implausible for %d encoded bytes", declen, len(enc))
	}
	nWords := declen / 4
	tailLen := declen - nWords*4
	body := enc[n:]
	ndst := grow(dst, declen)
	out := ndst[len(ndst)-declen:]
	ow, ok := wordio.View32(out)
	if !ok {
		return k.ref.InverseInto(dst, enc, maxDecoded)
	}

	bpool := getBuf()
	defer putBuf(bpool)
	pad := pooledBytes(bpool, len(body)+8)
	copy(pad, body)
	clear(pad[len(body):])
	totalBits := uint(len(body)) * 8
	pos := uint(0)
	prev := uint32(0)
	var tile [mplgSubchunkWords32]uint32
	for start := 0; start < nWords; start += mplgSubchunkWords32 {
		end := start + mplgSubchunkWords32
		if end > nWords {
			end = nWords
		}
		if pos+7 > totalBits {
			return nil, corruptf("MPLG: truncated header")
		}
		hdr := uint32(binary.BigEndian.Uint64(pad[pos>>3:])>>(57-(pos&7))) & 0x7f
		pos += 7
		keep := uint(hdr & 0x3f)
		if keep > 32 {
			return nil, corruptf("MPLG: kept bits %d > word size", keep)
		}
		sub := ow[start:end]
		if keep == 0 {
			// Zero diff words: every output word repeats the running value.
			for j := range sub {
				sub[j] = prev
			}
			continue
		}
		if pos+keep*uint(len(sub)) > totalBits {
			return nil, corruptf("MPLG: truncated values")
		}
		// SIMD: recover the DIFFMS stream words into the tile, then run
		// the un-zigzag + prefix-sum reconstruction over them.
		if np, ok := simd.Unpack32(tile[:len(sub)], pad, uint64(pos), keep, hdr>>6 == 1); ok {
			t := tile[:len(sub)]
			if p2, ok2 := simd.UnDiffZig32(sub, t, prev); ok2 {
				prev = p2
			} else {
				for j := range sub {
					prev += wordio.UnZigZag32(t[j])
					sub[j] = prev
				}
			}
			pos = uint(np)
			continue
		}
		mask := uint32(1)<<keep - 1
		sh := 64 - keep
		if hdr>>6 == 1 {
			for j := range sub {
				x := binary.BigEndian.Uint64(pad[pos>>3:])
				z := wordio.UnZigZag32(uint32(x>>(sh-(pos&7))) & mask)
				prev += wordio.UnZigZag32(z)
				sub[j] = prev
				pos += keep
			}
		} else {
			for j := range sub {
				x := binary.BigEndian.Uint64(pad[pos>>3:])
				prev += wordio.UnZigZag32(uint32(x>>(sh-(pos&7))) & mask)
				sub[j] = prev
				pos += keep
			}
		}
	}
	rest := int((pos + 7) / 8)
	if len(body)-rest < tailLen {
		return nil, corruptf("MPLG: truncated tail")
	}
	copy(out[nWords*4:], body[rest:rest+tailLen])
	return ndst, nil
}
