package fused

import (
	"encoding/binary"
	"math/bits"

	"fpcompress/internal/bitio"
	"fpcompress/internal/simd"
	"fpcompress/internal/transforms"
	"fpcompress/internal/wordio"
)

// Speed64 is the fused DIFFMS64+MPLG64 kernel behind DPspeed (and the
// auto modes' 64-bit speed candidate): the 64-word-subchunk analogue of
// Speed32, with MPLG64's 8-bit subchunk headers and split packing for
// kept widths above 32 bits.
type Speed64 struct {
	ref transforms.Pipeline
}

// NewSpeed64 returns the fused DPspeed kernel.
func NewSpeed64() *Speed64 {
	return &Speed64{ref: transforms.Pipeline{
		transforms.DiffMS{Word: wordio.W64},
		transforms.MPLG{Word: wordio.W64},
	}}
}

// Name implements Kernel.
func (k *Speed64) Name() string { return "FUSED(DIFFMS64+MPLG64)" }

// Pipeline implements Kernel.
func (k *Speed64) Pipeline() transforms.Pipeline { return k.ref }

// ForwardInto implements Kernel.
func (k *Speed64) ForwardInto(dst, src []byte) []byte {
	out, ok := k.forward(dst, src, nil)
	if !ok {
		return k.ref.ForwardInto(dst, src)
	}
	return out
}

// ForwardStatsInto is ForwardInto plus the selector gate's leading-zero
// histogram of the diff stream (the RAZE→RARE cost-model input),
// accumulated inside the fused pass. ok is false — with dst untouched —
// when the fused path is unavailable.
func (k *Speed64) ForwardStatsInto(dst, src []byte, gs *GateStats) ([]byte, bool) {
	return k.forward(dst, src, gs)
}

// forward mirrors transforms.MPLG.forwardFast64 over the DIFFMS64 stream,
// with the difference+zigzag fused into the subchunk tile fill.
func (k *Speed64) forward(dst, src []byte, gs *GateStats) ([]byte, bool) {
	sw, ok := wordio.View64(src)
	if !ok {
		return nil, false
	}
	nWords := len(sw)
	tail := src[nWords*8:]
	nsub := (nWords + mplgSubchunkWords64 - 1) / mplgSubchunkWords64
	if gs != nil {
		gs.Words = nWords
		gs.Hist = [65]int{}
	}
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	start0 := len(dst)
	dst = grow(dst, (nsub*8+nWords*64+7)/8+8)
	buf := dst
	bp := start0
	var acc uint64
	var nacc uint
	var tile [mplgSubchunkWords64]uint64
	prev := uint64(0)
	for start := 0; start < nWords; start += mplgSubchunkWords64 {
		end := start + mplgSubchunkWords64
		if end > nWords {
			end = nWords
		}
		sub := sw[start:end]
		t := tile[:len(sub)]
		m, simdOK := simd.DiffZigOr64(t, sub, prev)
		if simdOK {
			prev = sub[len(sub)-1]
			if gs != nil {
				for _, z := range t {
					gs.Hist[bits.LeadingZeros64(z)]++
				}
			}
		} else if gs != nil {
			for j, v := range sub {
				z := wordio.ZigZag64(v - prev)
				prev = v
				t[j] = z
				m |= z
				gs.Hist[bits.LeadingZeros64(z)]++
			}
		} else {
			for j, v := range sub {
				z := wordio.ZigZag64(v - prev)
				prev = v
				t[j] = z
				m |= z
			}
		}
		var flag uint64
		zig := false
		if m >= 1<<63 {
			flag, zig = 1, true
			if m, simdOK = simd.ZigOr64(t); !simdOK {
				m = 0
				for _, z := range t {
					m |= wordio.ZigZag64(z)
				}
			}
		}
		keep := uint(64 - bits.LeadingZeros64(m))
		acc = acc<<8 | flag<<7 | uint64(keep)
		nacc += 8
		if nacc >= 32 {
			nacc -= 32
			binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
			bp += 4
			acc &= 1<<nacc - 1
		}
		if keep == 0 {
			continue
		}
		if p, a, na, ok := simd.Pack64(buf, bp, acc, nacc, t, keep, zig); ok {
			bp, acc, nacc = p, a, na
		} else if keep <= 32 {
			for _, z := range t {
				w := z
				if zig {
					w = wordio.ZigZag64(z)
				}
				acc = acc<<keep | w
				nacc += keep
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
			}
		} else {
			hi := keep - 32
			for _, z := range t {
				w := z
				if zig {
					w = wordio.ZigZag64(z)
				}
				acc = acc<<hi | w>>32
				nacc += hi
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
				// Appending 32 bits always reaches the flush threshold, and
				// flushing subtracts the same 32, so nacc is unchanged.
				acc = acc<<32 | w&0xffffffff
				binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
				bp += 4
				acc &= 1<<nacc - 1
			}
		}
	}
	bp = bitFinish(buf, bp, acc, nacc)
	return append(dst[:bp], tail...), true
}

// InverseInto implements Kernel: MPLG64 unpack and DIFFMS64 prefix-sum
// reconstruction fused into one pass, mirroring
// transforms.MPLG.inverseFast64's bit stream handling exactly.
func (k *Speed64) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("MPLG: bad length prefix")
	}
	if declen64 > transforms.MaxDecoded {
		return nil, corruptf("MPLG: decoded length %d exceeds budget %d", declen64, transforms.MaxDecoded)
	}
	if maxDecoded >= 0 && declen64 > uint64(maxDecoded) {
		return nil, corruptf("pipeline: decoded length %d exceeds budget %d", declen64, maxDecoded)
	}
	declen := int(declen64)
	if declen > (len(enc)+2)*8*512 {
		return nil, corruptf("MPLG: decoded length %d implausible for %d encoded bytes", declen, len(enc))
	}
	nWords := declen / 8
	tailLen := declen - nWords*8
	body := enc[n:]
	ndst := grow(dst, declen)
	out := ndst[len(ndst)-declen:]
	ow, ok := wordio.View64(out)
	if !ok {
		return k.ref.InverseInto(dst, enc, maxDecoded)
	}

	bpool := getBuf()
	defer putBuf(bpool)
	pad := pooledBytes(bpool, len(body)+8)
	copy(pad, body)
	clear(pad[len(body):])
	totalBits := uint(len(body)) * 8
	pos := uint(0)
	prev := uint64(0)
	var tile [mplgSubchunkWords64]uint64
	for start := 0; start < nWords; start += mplgSubchunkWords64 {
		end := start + mplgSubchunkWords64
		if end > nWords {
			end = nWords
		}
		if pos+8 > totalBits {
			return nil, corruptf("MPLG: truncated header")
		}
		hdr := uint32(binary.BigEndian.Uint64(pad[pos>>3:])>>(56-(pos&7))) & 0xff
		pos += 8
		keep := uint(hdr & 0x7f)
		if keep > 64 {
			return nil, corruptf("MPLG: kept bits %d > word size", keep)
		}
		sub := ow[start:end]
		if keep == 0 {
			for j := range sub {
				sub[j] = prev
			}
			continue
		}
		if pos+keep*uint(len(sub)) > totalBits {
			return nil, corruptf("MPLG: truncated values")
		}
		// SIMD: recover the DIFFMS stream words into the tile, then run
		// the un-zigzag + prefix-sum reconstruction over them.
		if np, ok := simd.Unpack64(tile[:len(sub)], pad, uint64(pos), keep, hdr>>7 == 1); ok {
			t := tile[:len(sub)]
			if p2, ok2 := simd.UnDiffZig64(sub, t, prev); ok2 {
				prev = p2
			} else {
				for j := range sub {
					prev += wordio.UnZigZag64(t[j])
					sub[j] = prev
				}
			}
			pos = uint(np)
			continue
		}
		if hdr>>7 == 1 {
			for j := range sub {
				z := wordio.UnZigZag64(loadBits(pad, pos, keep))
				prev += wordio.UnZigZag64(z)
				sub[j] = prev
				pos += keep
			}
		} else {
			for j := range sub {
				prev += wordio.UnZigZag64(loadBits(pad, pos, keep))
				sub[j] = prev
				pos += keep
			}
		}
	}
	rest := int((pos + 7) / 8)
	if len(body)-rest < tailLen {
		return nil, corruptf("MPLG: truncated tail")
	}
	copy(out[nWords*8:], body[rest:rest+tailLen])
	return ndst, nil
}
