package transforms

import (
	"bytes"
	"testing"

	"fpcompress/internal/bitio"
	"fpcompress/internal/wordio"
)

// fuzzBudget bounds every fuzzed decode; with it in place a harness run
// cannot allocate more than a few MiB per call no matter what the fuzzer
// synthesizes, so an over-allocation bug shows up as an OOM-free failure.
const fuzzBudget = 1 << 20

// fuzzInverse drives one or more transforms (e.g. both word sizes) over
// arbitrary bytes: decoding must never panic, never report success with
// more than the budgeted bytes, and genuine encodings must keep round-
// tripping (the fuzzer mutates from those seeds).
func fuzzInverse(f *testing.F, trs ...Transform) {
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add(bitio.AppendUvarint(nil, 1<<40))
	for _, tr := range trs {
		f.Add(tr.Forward(smoothFloats32(300, 7)))
		f.Add(tr.Forward(smoothFloats64(150, 8)))
		f.Add(tr.Forward(make([]byte, 333)))
		f.Add(tr.Forward([]byte{1}))
	}
	f.Fuzz(func(t *testing.T, enc []byte) {
		for _, tr := range trs {
			dec, err := tr.InverseLimit(enc, fuzzBudget)
			if err != nil {
				continue
			}
			if len(dec) > fuzzBudget {
				t.Fatalf("%s: decoded %d bytes past budget %d", tr.Name(), len(dec), fuzzBudget)
			}
			// The append-into form must agree exactly with the allocating
			// form, preserve dst's existing bytes, and tolerate a dirty
			// reused buffer (decoders may not assume zeroed spare capacity).
			dirty := bytes.Repeat([]byte{0xEE}, 16+len(dec))[:16]
			got, err := tr.InverseInto(dirty, enc, fuzzBudget)
			if err != nil {
				t.Fatalf("%s: InverseInto failed where InverseLimit succeeded: %v", tr.Name(), err)
			}
			if len(got) != 16+len(dec) || !bytes.Equal(got[16:], dec) {
				t.Fatalf("%s: InverseInto diverged from InverseLimit", tr.Name())
			}
			for _, b := range got[:16] {
				if b != 0xEE {
					t.Fatalf("%s: InverseInto clobbered dst's existing bytes", tr.Name())
				}
			}
			// Accepted input must be re-encodable to something that decodes
			// back to the same bytes (Forward∘Inverse is idempotent even when
			// enc itself was not canonical).
			fwd := tr.ForwardInto(got[:16], dec)
			if !bytes.Equal(fwd[16:], tr.Forward(dec)) {
				t.Fatalf("%s: ForwardInto diverged from Forward", tr.Name())
			}
			re, err := tr.Inverse(fwd[16:])
			if err != nil || !bytes.Equal(re, dec) {
				t.Fatalf("%s: re-roundtrip diverged: %v", tr.Name(), err)
			}
		}
	})
}

func FuzzDiffMSInverse(f *testing.F) {
	fuzzInverse(f, DiffMS{Word: wordio.W32}, DiffMS{Word: wordio.W64})
}

func FuzzBitInverse(f *testing.F) {
	fuzzInverse(f, Bit{Word: wordio.W32}, Bit{Word: wordio.W64})
}

func FuzzMPLGInverse(f *testing.F) {
	fuzzInverse(f, MPLG{Word: wordio.W32}, MPLG{Word: wordio.W64}, MPLG{Word: wordio.W64, Subchunk: 7})
}

func FuzzRZEInverse(f *testing.F) {
	fuzzInverse(f, RZE{}, RZE{Granularity: 4})
}

func FuzzFCMInverse(f *testing.F) {
	fuzzInverse(f, FCM{})
}

func FuzzRAZEInverse(f *testing.F) {
	fuzzInverse(f, RAZE{})
}

func FuzzRAREInverse(f *testing.F) {
	fuzzInverse(f, RARE{})
}

// FuzzPipelineInverse drives the full DPratio chunk pipeline — the deepest
// stage stack — over arbitrary bytes with a budget, covering the stage
// headroom logic in Pipeline.InverseLimit.
func FuzzPipelineInverse(f *testing.F) {
	p := Pipeline{DiffMS{Word: wordio.W64}, RAZE{}, RARE{}}
	f.Add([]byte{})
	f.Add(p.Forward(smoothFloats64(200, 5)))
	f.Add(p.Forward(make([]byte, 100)))
	f.Fuzz(func(t *testing.T, enc []byte) {
		dec, err := p.InverseLimit(enc, fuzzBudget)
		if err != nil {
			return
		}
		// Stage headroom is 2*budget+64, so even a non-canonical accepted
		// input must stay within that envelope.
		if len(dec) > 2*fuzzBudget+64 {
			t.Fatalf("pipeline decoded %d bytes past budget envelope", len(dec))
		}
	})
}
