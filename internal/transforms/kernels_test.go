package transforms

import (
	"bytes"
	"math"
	"testing"

	"fpcompress/internal/simd"
	"fpcompress/internal/wordio"
)

// The word-level kernels dispatch on runtime alignment: aligned buffers
// take the unsafe word-view fast paths, misaligned ones the byte-accessor
// reference paths. These differential tests pin the two paths to the same
// bytes by sliding the same input across every offset 0..7 of an aligned
// backing array — offset 0 hits the fast path, 1..7 force progressively
// misaligned views (offset 4 is aligned for 32-bit words but not 64-bit).

// kernelTransforms is every transform whose ForwardInto/InverseInto has an
// alignment-dispatched kernel, at both word sizes where applicable.
func kernelTransforms() []Transform {
	return []Transform{
		DiffMS{Word: wordio.W32},
		DiffMS{Word: wordio.W64},
		Bit{Word: wordio.W32},
		Bit{Word: wordio.W64},
		MPLG{Word: wordio.W32},
		MPLG{Word: wordio.W64},
		RZE{},
		RAZE{},
		RARE{},
		FCM{},
	}
}

// kernelData builds n bytes mixing the regimes the kernels special-case:
// smooth floats (structured high bits), zero runs (RZE bulk skip), repeated
// words (FCM matches, RARE repeats), and pseudorandom bytes (per-bit slow
// lanes).
func kernelData(n int) []byte {
	b := make([]byte, n)
	q := n / 4
	for i := 0; i+8 <= q; i += 8 {
		wordio.PutU64(b[i:], 0, math.Float64bits(300+math.Sin(float64(i)/128)))
	}
	// b[q:2q] stays zero.
	for i := 2 * q; i+8 <= 3*q; i += 8 {
		wordio.PutU64(b[i:], 0, 0x40f8c0ffee000000)
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 3 * q; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// kernelLengths covers word multiples, straddling tails for both word
// sizes, and degenerate sizes.
var kernelLengths = []int{0, 1, 3, 4, 7, 8, 11, 512, 515, 16384, 16387, 16389}

// atOffset returns a copy of data positioned at byte offset off of a
// freshly allocated (hence word-aligned) backing array.
func atOffset(data []byte, off int) []byte {
	back := make([]byte, off+len(data))
	copy(back[off:], data)
	return back[off : off+len(data)]
}

// TestKernelForwardOffsets: the encoding must not depend on src alignment,
// so every offset's ForwardInto output must be byte-identical to offset
// 0's (which exercises the word-view fast path).
func TestKernelForwardOffsets(t *testing.T) {
	for _, tr := range kernelTransforms() {
		t.Run(tr.Name(), func(t *testing.T) {
			for _, n := range kernelLengths {
				data := kernelData(n)
				want := tr.ForwardInto(nil, atOffset(data, 0))
				for off := 1; off <= 7; off++ {
					got := tr.ForwardInto(nil, atOffset(data, off))
					if !bytes.Equal(got, want) {
						t.Fatalf("len %d: forward at src offset %d differs from aligned (lens %d vs %d)",
							n, off, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestKernelInverseOffsets: decoding must not depend on the alignment of
// the encoded input or of the append position in dst. A dst of length p
// (with capacity already sufficient, so no reallocation re-aligns it)
// places the decode region at offset p of an aligned array, forcing the
// reference inverse for p not a multiple of the word size; the decoded
// bytes and the preserved prefix must be exact either way.
func TestKernelInverseOffsets(t *testing.T) {
	for _, tr := range kernelTransforms() {
		t.Run(tr.Name(), func(t *testing.T) {
			for _, n := range kernelLengths {
				data := kernelData(n)
				enc := tr.ForwardInto(nil, data)
				for off := 0; off <= 7; off++ {
					got, err := tr.InverseInto(nil, atOffset(enc, off), n)
					if err != nil {
						t.Fatalf("len %d: inverse at enc offset %d: %v", n, off, err)
					}
					if !bytes.Equal(got, data) {
						t.Fatalf("len %d: inverse at enc offset %d differs from src", n, off)
					}
				}
				for p := 0; p <= 7; p++ {
					back := make([]byte, p, p+n+64)
					for i := range back {
						back[i] = 0xa5
					}
					got, err := tr.InverseInto(back, enc, n)
					if err != nil {
						t.Fatalf("len %d: inverse with dst prefix %d: %v", n, p, err)
					}
					if len(got) != p+n || !bytes.Equal(got[p:], data) {
						t.Fatalf("len %d: inverse with dst prefix %d decoded wrong bytes", n, p)
					}
					for i := 0; i < p; i++ {
						if got[i] != 0xa5 {
							t.Fatalf("len %d: inverse with dst prefix %d clobbered prefix byte %d", n, p, i)
						}
					}
				}
			}
		})
	}
}

// TestKernelForwardAppend: ForwardInto with a non-empty dst must preserve
// the prefix and append exactly the bytes a fresh Forward would produce,
// for every append offset (the packers compute bit positions relative to
// the region start, not the buffer start).
func TestKernelForwardAppend(t *testing.T) {
	for _, tr := range kernelTransforms() {
		t.Run(tr.Name(), func(t *testing.T) {
			for _, n := range []int{0, 11, 515, 16387} {
				data := kernelData(n)
				want := tr.ForwardInto(nil, data)
				for p := 0; p <= 7; p++ {
					back := make([]byte, p, p+len(want)+64)
					for i := range back {
						back[i] = 0x5a
					}
					got := tr.ForwardInto(back, data)
					if len(got) != p+len(want) || !bytes.Equal(got[p:], want) {
						t.Fatalf("len %d: forward with dst prefix %d differs from fresh encode", n, p)
					}
					for i := 0; i < p; i++ {
						if got[i] != 0x5a {
							t.Fatalf("len %d: forward with dst prefix %d clobbered prefix byte %d", n, p, i)
						}
					}
				}
			}
		})
	}
}

// TestKernelScalarVsSIMD force-compares the SIMD dispatch path against the
// scalar reference in one process: every ForwardInto encoding and
// InverseInto decoding must be byte-identical with the SIMD kernels
// enabled and disabled (simd.Disable is the programmatic form of the
// FPC_DISABLE_SIMD=1 knob). On builds with no SIMD (noasm, purego,
// other GOARCH) both runs take the scalar path and the test is a no-op
// check.
func TestKernelScalarVsSIMD(t *testing.T) {
	if simd.Available() == "scalar" {
		t.Skip("no SIMD kernels in this build")
	}
	defer simd.Enable()
	for _, tr := range kernelTransforms() {
		t.Run(tr.Name(), func(t *testing.T) {
			for _, n := range kernelLengths {
				data := kernelData(n)
				simd.Enable()
				encSIMD := tr.ForwardInto(nil, data)
				simd.Disable()
				encScalar := tr.ForwardInto(nil, data)
				if !bytes.Equal(encSIMD, encScalar) {
					t.Fatalf("len %d: SIMD and scalar encodings differ (lens %d vs %d)",
						n, len(encSIMD), len(encScalar))
				}
				simd.Enable()
				decSIMD, err := tr.InverseInto(nil, encSIMD, n)
				if err != nil {
					t.Fatalf("len %d: SIMD inverse: %v", n, err)
				}
				simd.Disable()
				decScalar, err := tr.InverseInto(nil, encSIMD, n)
				if err != nil {
					t.Fatalf("len %d: scalar inverse: %v", n, err)
				}
				if !bytes.Equal(decSIMD, data) || !bytes.Equal(decScalar, data) {
					t.Fatalf("len %d: inverse mismatch (simd ok=%v scalar ok=%v)",
						n, bytes.Equal(decSIMD, data), bytes.Equal(decScalar, data))
				}
			}
		})
	}
}
