package transforms

import (
	"fpcompress/internal/bitio"
	"fpcompress/internal/wordio"
)

// mplgSubchunk is the subchunk size in bytes. The paper divides each 16 kB
// chunk into 32 subchunks of 512 bytes so every subchunk can pick its own
// leading-zero count (and map onto one GPU warp).
const mplgSubchunk = 512

// MPLG implements the enhanced MPLG transformation (paper §3.1, Figure 3):
// for each 512-byte subchunk it finds the maximum word, counts that
// maximum's leading zero bits, and removes that many bits from every word in
// the subchunk, concatenating the survivors. The paper's enhancement is
// applied verbatim: if the maximum has no leading zeros — which would make
// the stage a no-op — the words are run through one extra two's-complement
// to magnitude-sign conversion, a cheap reversible mapping that frequently
// manufactures a few leading zeros, and the elimination is retried.
//
// Encoded form: uvarint decoded length, then one tightly packed bit stream:
// per subchunk a 1-bit fallback flag, a kept-bit-count field (6 bits for
// 32-bit words, 7 bits for 64-bit words), and the kept low bits of each
// word. Trailing bytes that do not fill a word follow byte-aligned.
type MPLG struct {
	Word wordio.WordSize
	// Subchunk overrides the 512-byte subchunk size for ablation
	// experiments (0 = the paper's 512). Encoder and decoder must agree.
	Subchunk int
}

func (m MPLG) subchunk() int {
	if m.Subchunk <= 0 {
		return mplgSubchunk
	}
	return m.Subchunk
}

// wordsPerSubchunk never returns less than 1, so a misconfigured Subchunk
// below the word size cannot stall the encode/decode loops.
func (m MPLG) wordsPerSubchunk(wsize int) int {
	if wp := m.subchunk() / wsize; wp > 0 {
		return wp
	}
	return 1
}

// Name implements Transform.
func (m MPLG) Name() string {
	if m.Word == wordio.W32 {
		return "MPLG32"
	}
	return "MPLG64"
}

func (m MPLG) keepFieldBits() uint {
	if m.Word == wordio.W32 {
		return 6 // keep in 0..32
	}
	return 7 // keep in 0..64
}

// Forward implements Transform.
func (m MPLG) Forward(src []byte) []byte {
	return m.ForwardInto(nil, src)
}

// ForwardInto implements Transform (see the package comment for the dst
// ownership contract).
func (m MPLG) ForwardInto(dst, src []byte) []byte {
	wsize := int(m.Word)
	wbits := m.Word.Bits()
	nWords := len(src) / wsize
	tail := src[nWords*wsize:]

	dst = growCap(dst, len(src)+len(src)/8+16)
	header := bitio.AppendUvarint(dst, uint64(len(src)))
	w := bitio.NewWriterBuf(header)
	wordsPer := m.wordsPerSubchunk(wsize)
	keepBits := m.keepFieldBits()

	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		// Pass 1: the subchunk maximum determines the kept width.
		maxv := uint64(0)
		if m.Word == wordio.W32 {
			for i := start; i < end; i++ {
				if v := uint64(wordio.U32(src, i)); v > maxv {
					maxv = v
				}
			}
		} else {
			for i := start; i < end; i++ {
				if v := wordio.U64(src, i); v > maxv {
					maxv = v
				}
			}
		}
		flag := uint(0)
		lz := leadingZeros(maxv, wbits)
		if lz == 0 {
			// Enhancement: one more magnitude-sign conversion, then retry.
			flag = 1
			maxv = 0
			if m.Word == wordio.W32 {
				for i := start; i < end; i++ {
					if v := uint64(wordio.ZigZag32(wordio.U32(src, i))); v > maxv {
						maxv = v
					}
				}
			} else {
				for i := start; i < end; i++ {
					if v := wordio.ZigZag64(wordio.U64(src, i)); v > maxv {
						maxv = v
					}
				}
			}
			lz = leadingZeros(maxv, wbits)
		}
		keep := uint(wbits - lz)
		w.WriteBit(flag)
		w.WriteBits(uint64(keep), keepBits)
		// Pass 2: emit the kept low bits of every word.
		if m.Word == wordio.W32 {
			if flag == 1 {
				for i := start; i < end; i++ {
					w.WriteBits(uint64(wordio.ZigZag32(wordio.U32(src, i))), keep)
				}
			} else {
				for i := start; i < end; i++ {
					w.WriteBits(uint64(wordio.U32(src, i)), keep)
				}
			}
		} else {
			if flag == 1 {
				for i := start; i < end; i++ {
					w.WriteBits(wordio.ZigZag64(wordio.U64(src, i)), keep)
				}
			} else {
				for i := start; i < end; i++ {
					w.WriteBits(wordio.U64(src, i), keep)
				}
			}
		}
	}
	return append(w.Bytes(), tail...)
}

// Inverse implements Transform.
func (m MPLG) Inverse(enc []byte) ([]byte, error) {
	return m.InverseInto(nil, enc, NoLimit)
}

// InverseLimit implements Transform.
func (m MPLG) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	return m.InverseInto(nil, enc, maxDecoded)
}

// InverseInto implements Transform (see the package comment for the dst
// ownership contract).
func (m MPLG) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("MPLG: bad length prefix")
	}
	if err := checkDecodedLen("MPLG", declen64, maxDecoded); err != nil {
		return nil, err
	}
	declen := int(declen64)
	// Each subchunk contributes at least its header bits, bounding the
	// plausible decoded size for a given encoded size (using the
	// configured subchunk size, which the encoder must have agreed on).
	if declen > (len(enc)+2)*8*m.subchunk() {
		return nil, corruptf("MPLG: decoded length %d implausible for %d encoded bytes", declen, len(enc))
	}
	wsize := int(m.Word)
	wbits := m.Word.Bits()
	nWords := declen / wsize
	tailLen := declen - nWords*wsize
	wordsPer := m.wordsPerSubchunk(wsize)

	r := bitio.NewReader(enc[n:])
	base := len(dst)
	dst = grow(dst, declen)
	out := dst[base:]
	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		flag, err := r.ReadBit()
		if err != nil {
			return nil, corruptf("MPLG: truncated header")
		}
		keep64, err := r.ReadBits(m.keepFieldBits())
		if err != nil {
			return nil, corruptf("MPLG: truncated header")
		}
		keep := uint(keep64)
		if keep > uint(wbits) {
			return nil, corruptf("MPLG: kept bits %d > word size", keep)
		}
		if m.Word == wordio.W32 {
			for i := start; i < end; i++ {
				v, err := r.ReadBits(keep)
				if err != nil {
					return nil, corruptf("MPLG: truncated values")
				}
				if flag == 1 {
					v = uint64(wordio.UnZigZag32(uint32(v)))
				}
				wordio.PutU32(out, i, uint32(v))
			}
		} else {
			for i := start; i < end; i++ {
				v, err := r.ReadBits(keep)
				if err != nil {
					return nil, corruptf("MPLG: truncated values")
				}
				if flag == 1 {
					v = wordio.UnZigZag64(v)
				}
				wordio.PutU64(out, i, v)
			}
		}
	}
	rest := r.Rest()
	if len(rest) < tailLen {
		return nil, corruptf("MPLG: truncated tail")
	}
	copy(out[nWords*wsize:], rest[:tailLen])
	return dst, nil
}

// leadingZeros counts leading zeros of v interpreted as a wbits-wide word.
func leadingZeros(v uint64, wbits int) int {
	lz := wordio.Clz64(v) - (64 - wbits)
	if lz < 0 {
		lz = 0
	}
	return lz
}
