package transforms

import (
	"encoding/binary"
	"math/bits"

	"fpcompress/internal/bitio"
	"fpcompress/internal/simd"
	"fpcompress/internal/wordio"
)

// mplgSubchunk is the subchunk size in bytes. The paper divides each 16 kB
// chunk into 32 subchunks of 512 bytes so every subchunk can pick its own
// leading-zero count (and map onto one GPU warp).
const mplgSubchunk = 512

// MPLG implements the enhanced MPLG transformation (paper §3.1, Figure 3):
// for each 512-byte subchunk it finds the maximum word, counts that
// maximum's leading zero bits, and removes that many bits from every word in
// the subchunk, concatenating the survivors. The paper's enhancement is
// applied verbatim: if the maximum has no leading zeros — which would make
// the stage a no-op — the words are run through one extra two's-complement
// to magnitude-sign conversion, a cheap reversible mapping that frequently
// manufactures a few leading zeros, and the elimination is retried.
//
// Encoded form: uvarint decoded length, then one tightly packed bit stream:
// per subchunk a 1-bit fallback flag, a kept-bit-count field (6 bits for
// 32-bit words, 7 bits for 64-bit words), and the kept low bits of each
// word. Trailing bytes that do not fill a word follow byte-aligned.
//
// The hot paths run over word views (wordio.View32/View64) with a local
// 64-bit bit-packing accumulator flushed 32 bits at a time straight into
// the output buffer (encode) and a 64-bit sliding load window over a
// zero-padded copy of the bit stream (decode). Misaligned buffers fall
// back to the bitio reference loops; both paths emit/accept identical
// bytes.
type MPLG struct {
	Word wordio.WordSize
	// Subchunk overrides the 512-byte subchunk size for ablation
	// experiments (0 = the paper's 512). Encoder and decoder must agree.
	Subchunk int
}

func (m MPLG) subchunk() int {
	if m.Subchunk <= 0 {
		return mplgSubchunk
	}
	return m.Subchunk
}

// wordsPerSubchunk never returns less than 1, so a misconfigured Subchunk
// below the word size cannot stall the encode/decode loops.
func (m MPLG) wordsPerSubchunk(wsize int) int {
	if wp := m.subchunk() / wsize; wp > 0 {
		return wp
	}
	return 1
}

// Name implements Transform.
func (m MPLG) Name() string {
	if m.Word == wordio.W32 {
		return "MPLG32"
	}
	return "MPLG64"
}

func (m MPLG) keepFieldBits() uint {
	if m.Word == wordio.W32 {
		return 6 // keep in 0..32
	}
	return 7 // keep in 0..64
}

// Forward implements Transform.
func (m MPLG) Forward(src []byte) []byte {
	return m.ForwardInto(nil, src)
}

// ForwardInto implements Transform (see the package comment for the dst
// ownership contract).
func (m MPLG) ForwardInto(dst, src []byte) []byte {
	if m.Word == wordio.W32 {
		if sw, ok := wordio.View32(src); ok {
			return m.forwardFast32(dst, src, sw)
		}
	} else {
		if sw, ok := wordio.View64(src); ok {
			return m.forwardFast64(dst, src, sw)
		}
	}
	return m.forwardRef(dst, src)
}

// forwardFast32 packs the bit stream with a register-resident accumulator:
// every write is at most 32 bits, so keeping fewer than 32 pending bits
// guarantees a write never straddles the 64-bit accumulator, and each
// flush is a single big-endian 32-bit store into the pre-grown output.
func (m MPLG) forwardFast32(dst, src []byte, sw []uint32) []byte {
	nWords := len(src) / 4
	tail := src[nWords*4:]
	wordsPer := m.wordsPerSubchunk(4)
	nsub := 0
	if wordsPer > 0 && nWords > 0 {
		nsub = (nWords + wordsPer - 1) / wordsPer
	}
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	start0 := len(dst)
	dst = grow(dst, (nsub*7+nWords*32+7)/8+8)
	buf := dst
	bp := start0
	var acc uint64
	var nacc uint
	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		sub := sw[start:end]
		// The width scan uses OR rather than max: the OR of a set has the
		// same bit length and the same top bit as its maximum, which are the
		// only two properties keep and flag derive, and OR vectorizes.
		orv, ok := simd.Or32(sub)
		if !ok {
			for _, v := range sub {
				orv |= v
			}
		}
		var flag uint64
		zig := false
		if orv >= 1<<31 {
			// Enhancement: one more magnitude-sign conversion, then retry.
			flag, zig = 1, true
			if orv, ok = simd.ZigOr32(sub); !ok {
				orv = 0
				for _, v := range sub {
					orv |= wordio.ZigZag32(v)
				}
			}
		}
		keep := uint(32 - bits.LeadingZeros32(orv))
		// 1-bit flag + 6-bit kept width, MSB-first.
		acc = acc<<7 | flag<<6 | uint64(keep)
		nacc += 7
		if nacc >= 32 {
			nacc -= 32
			binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
			bp += 4
			acc &= 1<<nacc - 1
		}
		if keep == 0 {
			continue
		}
		// Every value fits in keep bits by construction of orv.
		if p, a, na, ok := simd.Pack32(buf, bp, acc, nacc, sub, keep, zig); ok {
			bp, acc, nacc = p, a, na
		} else if zig {
			for _, v := range sub {
				acc = acc<<keep | uint64(wordio.ZigZag32(v))
				nacc += keep
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
			}
		} else {
			for _, v := range sub {
				acc = acc<<keep | uint64(v)
				nacc += keep
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
			}
		}
	}
	bp = bitFinish(buf, bp, acc, nacc)
	return append(dst[:bp], tail...)
}

// forwardFast64 is the 64-bit variant: kept widths above 32 bits are
// written as two sub-32-bit fields so the accumulator invariant holds.
func (m MPLG) forwardFast64(dst, src []byte, sw []uint64) []byte {
	nWords := len(src) / 8
	tail := src[nWords*8:]
	wordsPer := m.wordsPerSubchunk(8)
	nsub := 0
	if nWords > 0 {
		nsub = (nWords + wordsPer - 1) / wordsPer
	}
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	start0 := len(dst)
	dst = grow(dst, (nsub*8+nWords*64+7)/8+8)
	buf := dst
	bp := start0
	var acc uint64
	var nacc uint
	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		sub := sw[start:end]
		// OR width scan; see forwardFast32 for the OR/max equivalence.
		orv, ok := simd.Or64(sub)
		if !ok {
			for _, v := range sub {
				orv |= v
			}
		}
		var flag uint64
		zig := false
		if orv >= 1<<63 {
			flag, zig = 1, true
			if orv, ok = simd.ZigOr64(sub); !ok {
				orv = 0
				for _, v := range sub {
					orv |= wordio.ZigZag64(v)
				}
			}
		}
		keep := uint(64 - bits.LeadingZeros64(orv))
		// 1-bit flag + 7-bit kept width, MSB-first.
		acc = acc<<8 | flag<<7 | uint64(keep)
		nacc += 8
		if nacc >= 32 {
			nacc -= 32
			binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
			bp += 4
			acc &= 1<<nacc - 1
		}
		if keep == 0 {
			continue
		}
		if p, a, na, ok := simd.Pack64(buf, bp, acc, nacc, sub, keep, zig); ok {
			bp, acc, nacc = p, a, na
		} else if keep <= 32 {
			for _, v := range sub {
				w := v
				if zig {
					w = wordio.ZigZag64(v)
				}
				acc = acc<<keep | w
				nacc += keep
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
			}
		} else {
			hi := keep - 32
			for _, v := range sub {
				w := v
				if zig {
					w = wordio.ZigZag64(v)
				}
				acc = acc<<hi | w>>32
				nacc += hi
				if nacc >= 32 {
					nacc -= 32
					binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
					bp += 4
					acc &= 1<<nacc - 1
				}
				// Appending 32 bits always reaches the flush threshold, and
				// flushing subtracts the same 32, so nacc is unchanged.
				acc = acc<<32 | w&0xffffffff
				binary.BigEndian.PutUint32(buf[bp:], uint32(acc>>nacc))
				bp += 4
				acc &= 1<<nacc - 1
			}
		}
	}
	bp = bitFinish(buf, bp, acc, nacc)
	return append(dst[:bp], tail...)
}

// bitFinish spills an accumulator's remaining pending bits, zero-padded to
// a byte boundary exactly like bitio.Writer.Align, and returns the new
// write cursor.
func bitFinish(buf []byte, bp int, acc uint64, nacc uint) int {
	for nacc >= 8 {
		nacc -= 8
		buf[bp] = byte(acc >> nacc)
		bp++
	}
	if nacc > 0 {
		buf[bp] = byte(acc << (8 - nacc))
		bp++
	}
	return bp
}

// forwardRef is the bitio.Writer reference path (and the fallback for
// misaligned buffers); the accumulator kernels must match it byte for
// byte.
func (m MPLG) forwardRef(dst, src []byte) []byte {
	wsize := int(m.Word)
	wbits := m.Word.Bits()
	nWords := len(src) / wsize
	tail := src[nWords*wsize:]

	dst = growCap(dst, len(src)+len(src)/8+16)
	header := bitio.AppendUvarint(dst, uint64(len(src)))
	w := bitio.NewWriterBuf(header)
	wordsPer := m.wordsPerSubchunk(wsize)
	keepBits := m.keepFieldBits()

	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		// Pass 1: the subchunk maximum determines the kept width.
		maxv := uint64(0)
		if m.Word == wordio.W32 {
			for i := start; i < end; i++ {
				if v := uint64(wordio.U32(src, i)); v > maxv {
					maxv = v
				}
			}
		} else {
			for i := start; i < end; i++ {
				if v := wordio.U64(src, i); v > maxv {
					maxv = v
				}
			}
		}
		flag := uint(0)
		lz := leadingZeros(maxv, wbits)
		if lz == 0 {
			// Enhancement: one more magnitude-sign conversion, then retry.
			flag = 1
			maxv = 0
			if m.Word == wordio.W32 {
				for i := start; i < end; i++ {
					if v := uint64(wordio.ZigZag32(wordio.U32(src, i))); v > maxv {
						maxv = v
					}
				}
			} else {
				for i := start; i < end; i++ {
					if v := wordio.ZigZag64(wordio.U64(src, i)); v > maxv {
						maxv = v
					}
				}
			}
			lz = leadingZeros(maxv, wbits)
		}
		keep := uint(wbits - lz)
		w.WriteBit(flag)
		w.WriteBits(uint64(keep), keepBits)
		// Pass 2: emit the kept low bits of every word.
		if m.Word == wordio.W32 {
			if flag == 1 {
				for i := start; i < end; i++ {
					w.WriteBits(uint64(wordio.ZigZag32(wordio.U32(src, i))), keep)
				}
			} else {
				for i := start; i < end; i++ {
					w.WriteBits(uint64(wordio.U32(src, i)), keep)
				}
			}
		} else {
			if flag == 1 {
				for i := start; i < end; i++ {
					w.WriteBits(wordio.ZigZag64(wordio.U64(src, i)), keep)
				}
			} else {
				for i := start; i < end; i++ {
					w.WriteBits(wordio.U64(src, i), keep)
				}
			}
		}
	}
	return append(w.Bytes(), tail...)
}

// Inverse implements Transform.
func (m MPLG) Inverse(enc []byte) ([]byte, error) {
	return m.InverseInto(nil, enc, NoLimit)
}

// InverseLimit implements Transform.
func (m MPLG) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	return m.InverseInto(nil, enc, maxDecoded)
}

// InverseInto implements Transform (see the package comment for the dst
// ownership contract).
func (m MPLG) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("MPLG: bad length prefix")
	}
	if err := checkDecodedLen("MPLG", declen64, maxDecoded); err != nil {
		return nil, err
	}
	declen := int(declen64)
	// Each subchunk contributes at least its header bits, bounding the
	// plausible decoded size for a given encoded size (using the
	// configured subchunk size, which the encoder must have agreed on).
	if declen > (len(enc)+2)*8*m.subchunk() {
		return nil, corruptf("MPLG: decoded length %d implausible for %d encoded bytes", declen, len(enc))
	}
	wsize := int(m.Word)
	nWords := declen / wsize
	tailLen := declen - nWords*wsize
	wordsPer := m.wordsPerSubchunk(wsize)

	body := enc[n:]
	base := len(dst)
	dst = grow(dst, declen)
	out := dst[base:]
	var err error
	if m.Word == wordio.W32 {
		if ow, ok := wordio.View32(out); ok {
			err = m.inverseFast32(ow, out, body, nWords, wordsPer, tailLen)
		} else {
			err = m.inverseRef(out, body, nWords, wordsPer, tailLen)
		}
	} else {
		if ow, ok := wordio.View64(out); ok {
			err = m.inverseFast64(ow, out, body, nWords, wordsPer, tailLen)
		} else {
			err = m.inverseRef(out, body, nWords, wordsPer, tailLen)
		}
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// inverseFast32 unpacks the bit stream through a 64-bit load window over a
// zero-padded pooled copy of body, so every read is one big-endian load
// plus shifts with no per-read bounds handling. Truncation is checked once
// per subchunk (the reads are sequential, so the first out-of-bounds read
// the reference would hit trips the same batched check).
func (m MPLG) inverseFast32(ow []uint32, out, body []byte, nWords, wordsPer, tailLen int) error {
	bp := getBuf()
	defer putBuf(bp)
	pad := pooledBytes(bp, len(body)+8)
	copy(pad, body)
	clear(pad[len(body):])
	totalBits := uint(len(body)) * 8
	pos := uint(0)
	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		if pos+7 > totalBits {
			return corruptf("MPLG: truncated header")
		}
		hdr := uint32(binary.BigEndian.Uint64(pad[pos>>3:])>>(57-(pos&7))) & 0x7f
		pos += 7
		keep := uint(hdr & 0x3f)
		if keep > 32 {
			return corruptf("MPLG: kept bits %d > word size", keep)
		}
		sub := ow[start:end]
		if keep == 0 {
			// ReadBits(0) yields 0 in both flag modes (UnZigZag32(0) == 0).
			clear(sub)
			continue
		}
		if pos+keep*uint(len(sub)) > totalBits {
			return corruptf("MPLG: truncated values")
		}
		if np, ok := simd.Unpack32(sub, pad, uint64(pos), keep, hdr>>6 == 1); ok {
			pos = uint(np)
			continue
		}
		mask := uint32(1)<<keep - 1
		sh := 64 - keep
		if hdr>>6 == 1 {
			for j := range sub {
				x := binary.BigEndian.Uint64(pad[pos>>3:])
				sub[j] = wordio.UnZigZag32(uint32(x>>(sh-(pos&7))) & mask)
				pos += keep
			}
		} else {
			for j := range sub {
				x := binary.BigEndian.Uint64(pad[pos>>3:])
				sub[j] = uint32(x>>(sh-(pos&7))) & mask
				pos += keep
			}
		}
	}
	rest := int((pos + 7) / 8)
	if len(body)-rest < tailLen {
		return corruptf("MPLG: truncated tail")
	}
	copy(out[nWords*4:], body[rest:rest+tailLen])
	return nil
}

// inverseFast64 is the 64-bit variant; kept widths above 57 bits can
// straddle the load window by up to 7 bits, handled with one spill byte.
func (m MPLG) inverseFast64(ow []uint64, out, body []byte, nWords, wordsPer, tailLen int) error {
	bp := getBuf()
	defer putBuf(bp)
	pad := pooledBytes(bp, len(body)+8)
	copy(pad, body)
	clear(pad[len(body):])
	totalBits := uint(len(body)) * 8
	pos := uint(0)
	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		if pos+8 > totalBits {
			return corruptf("MPLG: truncated header")
		}
		hdr := uint32(binary.BigEndian.Uint64(pad[pos>>3:])>>(56-(pos&7))) & 0xff
		pos += 8
		keep := uint(hdr & 0x7f)
		if keep > 64 {
			return corruptf("MPLG: kept bits %d > word size", keep)
		}
		sub := ow[start:end]
		if keep == 0 {
			clear(sub)
			continue
		}
		if pos+keep*uint(len(sub)) > totalBits {
			return corruptf("MPLG: truncated values")
		}
		if np, ok := simd.Unpack64(sub, pad, uint64(pos), keep, hdr>>7 == 1); ok {
			pos = uint(np)
			continue
		}
		if hdr>>7 == 1 {
			for j := range sub {
				sub[j] = wordio.UnZigZag64(loadBits(pad, pos, keep))
				pos += keep
			}
		} else {
			for j := range sub {
				sub[j] = loadBits(pad, pos, keep)
				pos += keep
			}
		}
	}
	rest := int((pos + 7) / 8)
	if len(body)-rest < tailLen {
		return corruptf("MPLG: truncated tail")
	}
	copy(out[nWords*8:], body[rest:rest+tailLen])
	return nil
}

// inverseRef is the bitio.Reader reference path (and the fallback for
// misaligned output buffers).
func (m MPLG) inverseRef(out, body []byte, nWords, wordsPer, tailLen int) error {
	wsize := int(m.Word)
	wbits := m.Word.Bits()
	r := bitio.NewReader(body)
	for start := 0; start < nWords; start += wordsPer {
		end := start + wordsPer
		if end > nWords {
			end = nWords
		}
		flag, err := r.ReadBit()
		if err != nil {
			return corruptf("MPLG: truncated header")
		}
		keep64, err := r.ReadBits(m.keepFieldBits())
		if err != nil {
			return corruptf("MPLG: truncated header")
		}
		keep := uint(keep64)
		if keep > uint(wbits) {
			return corruptf("MPLG: kept bits %d > word size", keep)
		}
		if m.Word == wordio.W32 {
			for i := start; i < end; i++ {
				v, err := r.ReadBits(keep)
				if err != nil {
					return corruptf("MPLG: truncated values")
				}
				if flag == 1 {
					v = uint64(wordio.UnZigZag32(uint32(v)))
				}
				wordio.PutU32(out, i, uint32(v))
			}
		} else {
			for i := start; i < end; i++ {
				v, err := r.ReadBits(keep)
				if err != nil {
					return corruptf("MPLG: truncated values")
				}
				if flag == 1 {
					v = wordio.UnZigZag64(v)
				}
				wordio.PutU64(out, i, v)
			}
		}
	}
	rest := r.Rest()
	if len(rest) < tailLen {
		return corruptf("MPLG: truncated tail")
	}
	copy(out[nWords*wsize:], rest[:tailLen])
	return nil
}

// leadingZeros counts leading zeros of v interpreted as a wbits-wide word.
func leadingZeros(v uint64, wbits int) int {
	lz := wordio.Clz64(v) - (64 - wbits)
	if lz < 0 {
		lz = 0
	}
	return lz
}
