package transforms

import (
	"fmt"

	"fpcompress/internal/bitio"
)

// rzeBitmapFloor is the size at which the recursive bitmap compression
// stops. A 16 kB chunk's 16384-bit (2048-byte) bitmap shrinks 2048 -> 256 ->
// 32 -> 4 bytes, i.e. the "reduced to 2048, then 256, and ultimately 32
// bits" sequence of paper §3.2.
const rzeBitmapFloor = 4

// RZE implements the Repeated Zero Elimination transformation (paper §3.2,
// Figure 5). It builds a bitmap with one bit per input byte (set = byte is
// non-zero), removes all zero bytes, and emits the surviving bytes plus the
// bitmap. Because the bitmap is a significant fixed overhead, it is itself
// compressed by repeatedly applying the same scheme with "repeats the
// previous byte" in place of "is zero": only non-repeating bytes of each
// bitmap level and the final tiny bitmap are stored.
//
// Encoded form: uvarint decoded length, recursively compressed bitmap,
// then the non-zero data bytes.
//
// Granularity exists for the ablation benchmarks: the paper chose byte
// granularity "to increase the chance of finding zero values" over, say,
// whole words; setting Granularity to 2 or 4 elimination units quantifies
// that choice. The production pipelines always use the byte default.
type RZE struct {
	// Granularity is the elimination unit in bytes (0 or 1 = bytes, the
	// paper's choice).
	Granularity int
}

func (z RZE) unit() int {
	if z.Granularity <= 1 {
		return 1
	}
	return z.Granularity
}

// Name implements Transform.
func (z RZE) Name() string {
	if z.unit() == 1 {
		return "RZE"
	}
	return fmt.Sprintf("RZE%d", z.unit()*8)
}

// EncodeRepeatBitmap appends the repeat-eliminated recursive bitmap
// encoding of b to out (exported for the SIMT kernels in internal/simt,
// which must reproduce RZE's exact byte layout).
func EncodeRepeatBitmap(b []byte, out []byte) []byte {
	return encodeRepeatBitmap(b, out)
}

// encodeRepeatBitmap appends the repeat-eliminated encoding of b to out.
// Levels are emitted deepest first so the decoder can expand outward.
func encodeRepeatBitmap(b []byte, out []byte) []byte {
	if len(b) <= rzeBitmapFloor {
		return append(out, b...)
	}
	bm := make([]byte, (len(b)+7)/8)
	nonrep := make([]byte, 0, len(b)/4)
	prev := byte(0)
	for i, c := range b {
		if c != prev {
			bm[i>>3] |= 0x80 >> (i & 7)
			nonrep = append(nonrep, c)
		}
		prev = c
	}
	out = encodeRepeatBitmap(bm, out)
	return append(out, nonrep...)
}

// decodeRepeatBitmap reconstructs a length-l byte slice from src, returning
// it and the number of bytes consumed.
func decodeRepeatBitmap(src []byte, l int) ([]byte, int, error) {
	if l <= rzeBitmapFloor {
		if len(src) < l {
			return nil, 0, corruptf("RZE: truncated bitmap floor")
		}
		return src[:l:l], l, nil
	}
	bmLen := (l + 7) / 8
	bm, consumed, err := decodeRepeatBitmap(src, bmLen)
	if err != nil {
		return nil, 0, err
	}
	pos := consumed
	b := make([]byte, l)
	prev := byte(0)
	for i := 0; i < l; i++ {
		if bm[i>>3]&(0x80>>(i&7)) != 0 {
			if pos >= len(src) {
				return nil, 0, corruptf("RZE: truncated bitmap level")
			}
			prev = src[pos]
			pos++
		}
		b[i] = prev
	}
	return b, pos, nil
}

// Forward implements Transform.
func (z RZE) Forward(src []byte) []byte {
	g := z.unit()
	units := (len(src) + g - 1) / g
	bm := make([]byte, (units+7)/8)
	nonzero := make([]byte, 0, len(src)/2)
	for u := 0; u < units; u++ {
		lo, hi := u*g, (u+1)*g
		if hi > len(src) {
			hi = len(src)
		}
		zero := true
		for _, c := range src[lo:hi] {
			if c != 0 {
				zero = false
				break
			}
		}
		if !zero {
			bm[u>>3] |= 0x80 >> (u & 7)
			nonzero = append(nonzero, src[lo:hi]...)
		}
	}
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	out = encodeRepeatBitmap(bm, out)
	return append(out, nonzero...)
}

// Inverse implements Transform.
func (z RZE) Inverse(enc []byte) ([]byte, error) {
	return z.InverseLimit(enc, NoLimit)
}

// InverseLimit implements Transform.
func (z RZE) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("RZE: bad length prefix")
	}
	if err := checkDecodedLen("RZE", declen64, maxDecoded); err != nil {
		return nil, err
	}
	declen := int(declen64)
	g := z.unit()
	units := (declen + g - 1) / g
	bm, consumed, err := decodeRepeatBitmap(enc[n:], (units+7)/8)
	if err != nil {
		return nil, err
	}
	data := enc[n+consumed:]
	dst := make([]byte, declen)
	pos := 0
	for u := 0; u < units; u++ {
		if bm[u>>3]&(0x80>>(u&7)) == 0 {
			continue
		}
		lo, hi := u*g, (u+1)*g
		if hi > declen {
			hi = declen
		}
		if pos+hi-lo > len(data) {
			return nil, corruptf("RZE: truncated data bytes")
		}
		copy(dst[lo:hi], data[pos:pos+hi-lo])
		pos += hi - lo
	}
	return dst, nil
}
