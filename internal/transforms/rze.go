package transforms

import (
	"fmt"
	"math/bits"

	"fpcompress/internal/bitio"
	"fpcompress/internal/simd"
	"fpcompress/internal/wordio"
)

// rzeBitmapFloor is the size at which the recursive bitmap compression
// stops. A 16 kB chunk's 16384-bit (2048-byte) bitmap shrinks 2048 -> 256 ->
// 32 -> 4 bytes, i.e. the "reduced to 2048, then 256, and ultimately 32
// bits" sequence of paper §3.2.
const rzeBitmapFloor = 4

// RZE implements the Repeated Zero Elimination transformation (paper §3.2,
// Figure 5). It builds a bitmap with one bit per input byte (set = byte is
// non-zero), removes all zero bytes, and emits the surviving bytes plus the
// bitmap. Because the bitmap is a significant fixed overhead, it is itself
// compressed by repeatedly applying the same scheme with "repeats the
// previous byte" in place of "is zero": only non-repeating bytes of each
// bitmap level and the final tiny bitmap are stored.
//
// Encoded form: uvarint decoded length, recursively compressed bitmap,
// then the non-zero data bytes.
//
// The byte-granularity hot paths scan eight bytes at a time: a uint64 word
// view plus a SWAR non-zero/changed-byte movemask classifies each 8-byte
// group as all-skip, all-emit, or mixed, so the dominant all-zero and
// all-nonzero runs of post-BIT data move at word speed.
//
// Granularity exists for the ablation benchmarks: the paper chose byte
// granularity "to increase the chance of finding zero values" over, say,
// whole words; setting Granularity to 2 or 4 elimination units quantifies
// that choice. The production pipelines always use the byte default.
type RZE struct {
	// Granularity is the elimination unit in bytes (0 or 1 = bytes, the
	// paper's choice).
	Granularity int
}

func (z RZE) unit() int {
	if z.Granularity <= 1 {
		return 1
	}
	return z.Granularity
}

// Name implements Transform.
func (z RZE) Name() string {
	if z.unit() == 1 {
		return "RZE"
	}
	return fmt.Sprintf("RZE%d", z.unit()*8)
}

// nonzeroMask8 returns one bit per byte of the little-endian word v, set
// when that byte is non-zero, with the lowest-addressed byte in the most
// significant result bit — the same MSB-first order as RZE's bitmaps
// (byte j of v maps to 0x80 >> j).
//
// The SWAR: (v & 0x7f..) + 0x7f.. carries into bit 7 of any byte with a
// low bit set; OR-ing v itself covers bytes whose only set bit is bit 7.
// Multiplying the per-byte 0x01 mask by 0x8040201008040201 sums bit j*8
// into bit 63-j (the products 8j+9k collide only mod 9, so no carries),
// and the top byte of the product is the movemask.
func nonzeroMask8(v uint64) byte {
	m := (v | ((v & 0x7f7f7f7f7f7f7f7f) + 0x7f7f7f7f7f7f7f7f)) & 0x8080808080808080
	return byte(((m >> 7) * 0x8040201008040201) >> 56)
}

// EncodeRepeatBitmap appends the repeat-eliminated recursive bitmap
// encoding of b to out (exported for the SIMT kernels in internal/simt,
// which must reproduce RZE's exact byte layout).
func EncodeRepeatBitmap(b []byte, out []byte) []byte {
	return appendRepeatBitmap(out, b)
}

// ZeroBitmap fills bm — which must hold (len(src)+7)/8 bytes — with RZE's
// non-zero-byte bitmap of src (bit i set when src[i] != 0, MSB-first within
// each byte) and returns the number of non-zero bytes. Together with
// EncodeRepeatBitmap this lets the auto-mode selector price an RZE stage
// exactly without encoding it: the output is always
// uvarint(len) + repeat-bitmap + the non-zero bytes.
func ZeroBitmap(bm, src []byte) int {
	if nz, ok := simd.NonzeroBM(bm, src); ok {
		return nz
	}
	clear(bm)
	nonzero := 0
	i := 0
	if sw, ok := wordio.View64(src); ok {
		for g, v := range sw {
			if v == 0 {
				continue
			}
			m := nonzeroMask8(v)
			bm[g] = m
			nonzero += bits.OnesCount8(m)
		}
		i = len(sw) * 8
	}
	for ; i < len(src); i++ {
		if src[i] != 0 {
			bm[i>>3] |= 0x80 >> (i & 7)
			nonzero++
		}
	}
	return nonzero
}

// buildChangeBitmap fills bm (one bit per byte of cur, MSB-first) with the
// changed-byte bitmap: bit set when the byte differs from its predecessor
// (the byte before cur[0] is taken as zero). Full 8-byte groups use the
// SWAR mask over a word view; the tail — and misaligned buffers — go byte
// by byte.
func buildChangeBitmap(bm, cur []byte) {
	if simd.ChangeBM(bm, cur) {
		return
	}
	clear(bm)
	prev := byte(0)
	i := 0
	if cw, ok := wordio.View64(cur); ok {
		for g, v := range cw {
			// Byte j of v<<8|prev is byte j's predecessor.
			bm[g] = nonzeroMask8(v ^ (v<<8 | uint64(prev)))
			prev = byte(v >> 56)
		}
		i = len(cw) * 8
	}
	for ; i < len(cur); i++ {
		if cur[i] != prev {
			bm[i>>3] |= 0x80 >> (i & 7)
		}
		prev = cur[i]
	}
}

// appendNonRepeats appends the bytes of lvl that differ from their
// predecessor (the byte before lvl[0] is taken as zero), classifying
// 8-byte groups with the SWAR changed mask.
func appendNonRepeats(out, lvl []byte) []byte {
	prev := byte(0)
	i := 0
	if lw, ok := wordio.View64(lvl); ok {
		for g, v := range lw {
			x := v ^ (v<<8 | uint64(prev))
			prev = byte(v >> 56)
			if x == 0 {
				continue
			}
			base := g * 8
			m := nonzeroMask8(x)
			if m == 0xff {
				out = append(out, lvl[base:base+8]...)
				continue
			}
			for j := 0; j < 8; j++ {
				if m&(0x80>>j) != 0 {
					out = append(out, lvl[base+j])
				}
			}
		}
		i = len(lw) * 8
	}
	for ; i < len(lvl); i++ {
		if lvl[i] != prev {
			out = append(out, lvl[i])
		}
		prev = lvl[i]
	}
	return out
}

// appendRepeatBitmap appends the repeat-eliminated recursive bitmap
// encoding of b to out. The logical recursion enc(L) = enc(bitmap(L)) +
// nonrep(L) is run iteratively: the shrinking bitmap levels are built in
// one pooled scratch buffer (each level's start rounded up to 8 bytes so
// the SWAR passes can alias it as words), the deepest (<= floor) level is
// emitted verbatim, and each level's non-repeating bytes are re-derived
// while appending — so the encoder allocates nothing per level.
func appendRepeatBitmap(out, b []byte) []byte {
	if len(b) <= rzeBitmapFloor {
		return append(out, b...)
	}
	sp := getBuf()
	defer putBuf(sp)
	// The level chain totals ~len(b)/7 bytes plus alignment pads.
	scratch := growCap((*sp)[:0], len(b)/7+128)
	// Level k of the chain (level 0 being b itself) has its bitmap — level
	// k+1 — at scratch[starts[k]:starts[k]+lens[k]]. Depth is log8-bounded,
	// ~9 levels for the 64 MiB MaxDecoded cap, so the tables live on the
	// stack.
	var startA, lenA [16]int
	starts, lens := startA[:0], lenA[:0]
	cur := b
	for len(cur) > rzeBitmapFloor {
		bmLen := (len(cur) + 7) / 8
		start := (len(scratch) + 7) &^ 7
		scratch = grow(scratch, start-len(scratch)+bmLen)
		bm := scratch[start : start+bmLen]
		buildChangeBitmap(bm, cur)
		starts = append(starts, start)
		lens = append(lens, bmLen)
		cur = bm
	}
	*sp = scratch
	// Deepest level verbatim, then each level's non-repeating bytes
	// deepest-first (matching the recursion's emit order).
	out = append(out, cur...)
	for k := len(starts) - 1; k >= 0; k-- {
		lvl := b
		if k > 0 {
			lvl = scratch[starts[k-1] : starts[k-1]+lens[k-1]]
		}
		out = appendNonRepeats(out, lvl)
	}
	return out
}

// RepeatBitmapLen returns len(EncodeRepeatBitmap(b, nil)) without
// materializing the encoding: each level contributes exactly the popcount
// of its change bitmap (the bytes appendNonRepeats would emit), plus the
// deepest level verbatim. The auto-mode selector prices RZE stages by size
// alone, and skipping the byte gathering makes the length a fraction of
// the encode cost.
func RepeatBitmapLen(b []byte) int {
	if len(b) <= rzeBitmapFloor {
		return len(b)
	}
	sp := getBuf()
	defer putBuf(sp)
	scratch := growCap((*sp)[:0], len(b)/7+128)
	total := 0
	cur := b
	for len(cur) > rzeBitmapFloor {
		bmLen := (len(cur) + 7) / 8
		start := (len(scratch) + 7) &^ 7
		scratch = grow(scratch, start-len(scratch)+bmLen)
		bm := scratch[start : start+bmLen]
		buildChangeBitmap(bm, cur)
		total += popcountBytes(bm)
		cur = bm
	}
	*sp = scratch
	return total + len(cur)
}

// popcountBytes counts the set bits of b, a word at a time.
func popcountBytes(b []byte) int {
	n, i := 0, 0
	if w, ok := wordio.View64(b); ok {
		for _, v := range w {
			n += bits.OnesCount64(v)
		}
		i = len(w) * 8
	}
	for ; i < len(b); i++ {
		n += bits.OnesCount8(b[i])
	}
	return n
}

// expandRepeatLevel reconstructs one bitmap level: out[i] repeats the
// previous byte unless bm's bit i is set, in which case the next src byte
// (from offset consumed) is taken. It returns the updated consumed offset.
// Groups of eight are dispatched on the bm byte: 0x00 is a pure repeat
// run, 0xff a straight copy.
func expandRepeatLevel(out, bm, src []byte, consumed int) (int, error) {
	groups := len(out) / 8
	prev := byte(0)
	for g := 0; g < groups; g++ {
		m := bm[g]
		o := out[g*8 : g*8+8]
		switch {
		case m == 0:
			o[0], o[1], o[2], o[3] = prev, prev, prev, prev
			o[4], o[5], o[6], o[7] = prev, prev, prev, prev
		case m == 0xff:
			if consumed+8 > len(src) {
				return 0, corruptf("RZE: truncated bitmap level")
			}
			copy(o, src[consumed:consumed+8])
			consumed += 8
			prev = o[7]
		default:
			if consumed+bits.OnesCount8(m) > len(src) {
				return 0, corruptf("RZE: truncated bitmap level")
			}
			for j := 0; j < 8; j++ {
				if m&(0x80>>j) != 0 {
					prev = src[consumed]
					consumed++
				}
				o[j] = prev
			}
		}
	}
	for i := groups * 8; i < len(out); i++ {
		if bm[i>>3]&(0x80>>(i&7)) != 0 {
			if consumed >= len(src) {
				return 0, corruptf("RZE: truncated bitmap level")
			}
			prev = src[consumed]
			consumed++
		}
		out[i] = prev
	}
	return consumed, nil
}

// decodeRepeatBitmapScratch reconstructs the length-l level-0 bitmap from
// src, expanding the level chain inside the pooled buffer *bp (no per-level
// — or any — allocation; the level tables live on the stack). It returns
// the bitmap (which may alias src when l is at or below the recursion
// floor, and otherwise aliases *bp) and the number of src bytes consumed.
func decodeRepeatBitmapScratch(bp *[]byte, src []byte, l int) ([]byte, int, error) {
	if l <= rzeBitmapFloor {
		if len(src) < l {
			return nil, 0, corruptf("RZE: truncated bitmap floor")
		}
		return src[:l:l], l, nil
	}
	// lens[k] is the size of level k; the chain stops at the first level at
	// or below the floor (log8-bounded depth, so the tables fit the stack).
	var lenA, offA [16]int
	lens := append(lenA[:0], l)
	for lens[len(lens)-1] > rzeBitmapFloor {
		lens = append(lens, (lens[len(lens)-1]+7)/8)
	}
	d := len(lens) - 1
	total := 0
	for _, n := range lens {
		total += n
	}
	scratch := pooledBytes(bp, total)
	// Level k occupies scratch[off[k] : off[k]+lens[k]], deepest first.
	var off []int
	if len(lens) <= len(offA) {
		off = offA[:len(lens)]
	} else {
		off = make([]int, len(lens))
	}
	pos := 0
	for k := d; k >= 0; k-- {
		off[k] = pos
		pos += lens[k]
	}
	if len(src) < lens[d] {
		return nil, 0, corruptf("RZE: truncated bitmap floor")
	}
	copy(scratch[off[d]:], src[:lens[d]])
	consumed := lens[d]
	for k := d - 1; k >= 0; k-- {
		bm := scratch[off[k+1] : off[k+1]+lens[k+1]]
		out := scratch[off[k] : off[k]+lens[k]]
		var err error
		consumed, err = expandRepeatLevel(out, bm, src, consumed)
		if err != nil {
			return nil, 0, err
		}
	}
	return scratch[off[0] : off[0]+l], consumed, nil
}

// Forward implements Transform.
func (z RZE) Forward(src []byte) []byte {
	return z.ForwardInto(nil, src)
}

// ForwardInto implements Transform (see the package comment for the dst
// ownership contract). The zero bitmap lives in pooled scratch and the
// surviving bytes are appended in a second pass over src, so nothing is
// allocated beyond dst growth.
func (z RZE) ForwardInto(dst, src []byte) []byte {
	g := z.unit()
	if g == 1 {
		if sw, ok := wordio.View64(src); ok {
			return z.forwardFast(dst, src, sw)
		}
	}
	return z.forwardRef(dst, src)
}

// forwardFast is the byte-granularity hot path: the zero bitmap comes one
// whole byte at a time from the SWAR mask of each word, and the survivor
// pass skips all-zero words and bulk-copies all-nonzero ones.
func (z RZE) forwardFast(dst, src []byte, sw []uint64) []byte {
	bp := getBuf()
	defer putBuf(bp)
	bm := pooledBytes(bp, (len(src)+7)/8)
	clear(bm)
	nonzero := 0
	for g, v := range sw {
		if v == 0 {
			continue
		}
		m := nonzeroMask8(v)
		bm[g] = m
		nonzero += bits.OnesCount8(m)
	}
	for i := len(sw) * 8; i < len(src); i++ {
		if src[i] != 0 {
			bm[i>>3] |= 0x80 >> (i & 7)
			nonzero++
		}
	}
	dst = growCap(dst, bitio.UvarintLen(uint64(len(src)))+len(bm)+len(bm)/4+nonzero+16)
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	dst = appendRepeatBitmap(dst, bm)
	for g, v := range sw {
		if v == 0 {
			continue
		}
		base := g * 8
		if m := bm[g]; m != 0xff {
			for j := 0; j < 8; j++ {
				if m&(0x80>>j) != 0 {
					dst = append(dst, src[base+j])
				}
			}
			continue
		}
		dst = append(dst, src[base:base+8]...)
	}
	for i := len(sw) * 8; i < len(src); i++ {
		if c := src[i]; c != 0 {
			dst = append(dst, c)
		}
	}
	return dst
}

// forwardRef is the byte-at-a-time reference path (all granularities, and
// the fallback for misaligned buffers at byte granularity); the SWAR path
// must match it byte for byte.
func (z RZE) forwardRef(dst, src []byte) []byte {
	g := z.unit()
	units := (len(src) + g - 1) / g
	bp := getBuf()
	defer putBuf(bp)
	bm := pooledBytes(bp, (units+7)/8)
	clear(bm)
	nonzero := 0
	if g == 1 {
		for i, c := range src {
			if c != 0 {
				bm[i>>3] |= 0x80 >> (i & 7)
				nonzero++
			}
		}
	} else {
		for u := 0; u < units; u++ {
			lo, hi := u*g, (u+1)*g
			if hi > len(src) {
				hi = len(src)
			}
			zero := true
			for _, c := range src[lo:hi] {
				if c != 0 {
					zero = false
					break
				}
			}
			if !zero {
				bm[u>>3] |= 0x80 >> (u & 7)
				nonzero += hi - lo
			}
		}
	}
	dst = growCap(dst, bitio.UvarintLen(uint64(len(src)))+len(bm)+len(bm)/4+nonzero+16)
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	dst = appendRepeatBitmap(dst, bm)
	if g == 1 {
		for _, c := range src {
			if c != 0 {
				dst = append(dst, c)
			}
		}
		return dst
	}
	for u := 0; u < units; u++ {
		if bm[u>>3]&(0x80>>(u&7)) == 0 {
			continue
		}
		lo, hi := u*g, (u+1)*g
		if hi > len(src) {
			hi = len(src)
		}
		dst = append(dst, src[lo:hi]...)
	}
	return dst
}

// rzeScatterBytes re-inserts the surviving data bytes at the positions
// bm marks non-zero (out must be pre-zeroed). 8-byte groups dispatch on
// the bm byte: 0x00 skips, 0xff bulk-copies.
func rzeScatterBytes(out, bm, data []byte) error {
	pos := 0
	groups := len(out) / 8
	for g := 0; g < groups; g++ {
		m := bm[g]
		if m == 0 {
			continue
		}
		o := out[g*8 : g*8+8]
		if m == 0xff {
			if pos+8 > len(data) {
				return corruptf("RZE: truncated data bytes")
			}
			copy(o, data[pos:pos+8])
			pos += 8
			continue
		}
		if pos+bits.OnesCount8(m) > len(data) {
			return corruptf("RZE: truncated data bytes")
		}
		for j := 0; j < 8; j++ {
			if m&(0x80>>j) != 0 {
				o[j] = data[pos]
				pos++
			}
		}
	}
	for i := groups * 8; i < len(out); i++ {
		if bm[i>>3]&(0x80>>(i&7)) != 0 {
			if pos >= len(data) {
				return corruptf("RZE: truncated data bytes")
			}
			out[i] = data[pos]
			pos++
		}
	}
	return nil
}

// Inverse implements Transform.
func (z RZE) Inverse(enc []byte) ([]byte, error) {
	return z.InverseInto(nil, enc, NoLimit)
}

// InverseLimit implements Transform.
func (z RZE) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	return z.InverseInto(nil, enc, maxDecoded)
}

// InverseInto implements Transform (see the package comment for the dst
// ownership contract).
func (z RZE) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("RZE: bad length prefix")
	}
	if err := checkDecodedLen("RZE", declen64, maxDecoded); err != nil {
		return nil, err
	}
	declen := int(declen64)
	g := z.unit()
	units := (declen + g - 1) / g
	bp := getBuf()
	defer putBuf(bp)
	bm, consumed, err := decodeRepeatBitmapScratch(bp, enc[n:], (units+7)/8)
	if err != nil {
		return nil, err
	}
	data := enc[n+consumed:]
	base := len(dst)
	dst = grow(dst, declen)
	out := dst[base:]
	// Eliminated units decode to zero bytes; the grown region is not
	// guaranteed fresh, so zero it first.
	clear(out)
	if g == 1 {
		if err := rzeScatterBytes(out, bm, data); err != nil {
			return nil, err
		}
		return dst, nil
	}
	pos := 0
	for u := 0; u < units; u++ {
		if bm[u>>3]&(0x80>>(u&7)) == 0 {
			continue
		}
		lo, hi := u*g, (u+1)*g
		if hi > declen {
			hi = declen
		}
		if pos+hi-lo > len(data) {
			return nil, corruptf("RZE: truncated data bytes")
		}
		copy(out[lo:hi], data[pos:pos+hi-lo])
		pos += hi - lo
	}
	return dst, nil
}
