package transforms

import (
	"fmt"

	"fpcompress/internal/bitio"
)

// rzeBitmapFloor is the size at which the recursive bitmap compression
// stops. A 16 kB chunk's 16384-bit (2048-byte) bitmap shrinks 2048 -> 256 ->
// 32 -> 4 bytes, i.e. the "reduced to 2048, then 256, and ultimately 32
// bits" sequence of paper §3.2.
const rzeBitmapFloor = 4

// RZE implements the Repeated Zero Elimination transformation (paper §3.2,
// Figure 5). It builds a bitmap with one bit per input byte (set = byte is
// non-zero), removes all zero bytes, and emits the surviving bytes plus the
// bitmap. Because the bitmap is a significant fixed overhead, it is itself
// compressed by repeatedly applying the same scheme with "repeats the
// previous byte" in place of "is zero": only non-repeating bytes of each
// bitmap level and the final tiny bitmap are stored.
//
// Encoded form: uvarint decoded length, recursively compressed bitmap,
// then the non-zero data bytes.
//
// Granularity exists for the ablation benchmarks: the paper chose byte
// granularity "to increase the chance of finding zero values" over, say,
// whole words; setting Granularity to 2 or 4 elimination units quantifies
// that choice. The production pipelines always use the byte default.
type RZE struct {
	// Granularity is the elimination unit in bytes (0 or 1 = bytes, the
	// paper's choice).
	Granularity int
}

func (z RZE) unit() int {
	if z.Granularity <= 1 {
		return 1
	}
	return z.Granularity
}

// Name implements Transform.
func (z RZE) Name() string {
	if z.unit() == 1 {
		return "RZE"
	}
	return fmt.Sprintf("RZE%d", z.unit()*8)
}

// EncodeRepeatBitmap appends the repeat-eliminated recursive bitmap
// encoding of b to out (exported for the SIMT kernels in internal/simt,
// which must reproduce RZE's exact byte layout).
func EncodeRepeatBitmap(b []byte, out []byte) []byte {
	return appendRepeatBitmap(out, b)
}

// appendRepeatBitmap appends the repeat-eliminated recursive bitmap
// encoding of b to out. The logical recursion enc(L) = enc(bitmap(L)) +
// nonrep(L) is run iteratively: the shrinking bitmap levels are built
// contiguously in one pooled scratch buffer, the deepest (<= floor) level
// is emitted verbatim, and each level's non-repeating bytes are re-derived
// while appending — so the encoder allocates nothing per level.
func appendRepeatBitmap(out, b []byte) []byte {
	if len(b) <= rzeBitmapFloor {
		return append(out, b...)
	}
	sp := getBuf()
	defer putBuf(sp)
	// The level chain totals ~len(b)/7 bytes.
	scratch := growCap((*sp)[:0], len(b)/7+16)
	// starts[k] is the offset in scratch where the bitmap of level k begins
	// (that bitmap being level k+1; level 0 is b itself). Depth is
	// log8-bounded, ~9 levels for the 64 MiB MaxDecoded cap.
	starts := make([]int, 0, 16)
	cur := b
	for len(cur) > rzeBitmapFloor {
		bmLen := (len(cur) + 7) / 8
		start := len(scratch)
		scratch = grow(scratch, bmLen)
		bm := scratch[start:]
		clear(bm)
		prev := byte(0)
		for i, c := range cur {
			if c != prev {
				bm[i>>3] |= 0x80 >> (i & 7)
			}
			prev = c
		}
		starts = append(starts, start)
		cur = bm
	}
	*sp = scratch
	// Deepest level verbatim, then each level's non-repeating bytes
	// deepest-first (matching the recursion's emit order).
	out = append(out, cur...)
	for k := len(starts) - 1; k >= 0; k-- {
		lvl := b
		if k > 0 {
			lvl = scratch[starts[k-1]:starts[k]]
		}
		prev := byte(0)
		for _, c := range lvl {
			if c != prev {
				out = append(out, c)
			}
			prev = c
		}
	}
	return out
}

// decodeRepeatBitmapScratch reconstructs the length-l level-0 bitmap from
// src, expanding the level chain inside the pooled buffer *bp (no per-level
// allocation). It returns the bitmap (which may alias src when l is at or
// below the recursion floor, and otherwise aliases *bp) and the number of
// src bytes consumed.
func decodeRepeatBitmapScratch(bp *[]byte, src []byte, l int) ([]byte, int, error) {
	if l <= rzeBitmapFloor {
		if len(src) < l {
			return nil, 0, corruptf("RZE: truncated bitmap floor")
		}
		return src[:l:l], l, nil
	}
	// lens[k] is the size of level k; the chain stops at the first level at
	// or below the floor.
	lens := make([]int, 1, 16)
	lens[0] = l
	for lens[len(lens)-1] > rzeBitmapFloor {
		lens = append(lens, (lens[len(lens)-1]+7)/8)
	}
	d := len(lens) - 1
	total := 0
	for _, n := range lens {
		total += n
	}
	scratch := pooledBytes(bp, total)
	// Level k occupies scratch[off[k] : off[k]+lens[k]], deepest first.
	off := make([]int, len(lens))
	pos := 0
	for k := d; k >= 0; k-- {
		off[k] = pos
		pos += lens[k]
	}
	if len(src) < lens[d] {
		return nil, 0, corruptf("RZE: truncated bitmap floor")
	}
	copy(scratch[off[d]:], src[:lens[d]])
	consumed := lens[d]
	for k := d - 1; k >= 0; k-- {
		bm := scratch[off[k+1] : off[k+1]+lens[k+1]]
		out := scratch[off[k] : off[k]+lens[k]]
		prev := byte(0)
		for i := range out {
			if bm[i>>3]&(0x80>>(i&7)) != 0 {
				if consumed >= len(src) {
					return nil, 0, corruptf("RZE: truncated bitmap level")
				}
				prev = src[consumed]
				consumed++
			}
			out[i] = prev
		}
	}
	return scratch[off[0] : off[0]+l], consumed, nil
}

// Forward implements Transform.
func (z RZE) Forward(src []byte) []byte {
	return z.ForwardInto(nil, src)
}

// ForwardInto implements Transform (see the package comment for the dst
// ownership contract). The zero bitmap lives in pooled scratch and the
// surviving bytes are appended in a second pass over src, so nothing is
// allocated beyond dst growth.
func (z RZE) ForwardInto(dst, src []byte) []byte {
	g := z.unit()
	units := (len(src) + g - 1) / g
	bp := getBuf()
	defer putBuf(bp)
	bm := pooledBytes(bp, (units+7)/8)
	clear(bm)
	nonzero := 0
	if g == 1 {
		for i, c := range src {
			if c != 0 {
				bm[i>>3] |= 0x80 >> (i & 7)
				nonzero++
			}
		}
	} else {
		for u := 0; u < units; u++ {
			lo, hi := u*g, (u+1)*g
			if hi > len(src) {
				hi = len(src)
			}
			zero := true
			for _, c := range src[lo:hi] {
				if c != 0 {
					zero = false
					break
				}
			}
			if !zero {
				bm[u>>3] |= 0x80 >> (u & 7)
				nonzero += hi - lo
			}
		}
	}
	dst = growCap(dst, bitio.UvarintLen(uint64(len(src)))+len(bm)+len(bm)/4+nonzero+16)
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	dst = appendRepeatBitmap(dst, bm)
	if g == 1 {
		for _, c := range src {
			if c != 0 {
				dst = append(dst, c)
			}
		}
		return dst
	}
	for u := 0; u < units; u++ {
		if bm[u>>3]&(0x80>>(u&7)) == 0 {
			continue
		}
		lo, hi := u*g, (u+1)*g
		if hi > len(src) {
			hi = len(src)
		}
		dst = append(dst, src[lo:hi]...)
	}
	return dst
}

// Inverse implements Transform.
func (z RZE) Inverse(enc []byte) ([]byte, error) {
	return z.InverseInto(nil, enc, NoLimit)
}

// InverseLimit implements Transform.
func (z RZE) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	return z.InverseInto(nil, enc, maxDecoded)
}

// InverseInto implements Transform (see the package comment for the dst
// ownership contract).
func (z RZE) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	declen64, n := bitio.Uvarint(enc)
	if n == 0 {
		return nil, corruptf("RZE: bad length prefix")
	}
	if err := checkDecodedLen("RZE", declen64, maxDecoded); err != nil {
		return nil, err
	}
	declen := int(declen64)
	g := z.unit()
	units := (declen + g - 1) / g
	bp := getBuf()
	defer putBuf(bp)
	bm, consumed, err := decodeRepeatBitmapScratch(bp, enc[n:], (units+7)/8)
	if err != nil {
		return nil, err
	}
	data := enc[n+consumed:]
	base := len(dst)
	dst = grow(dst, declen)
	out := dst[base:]
	// Eliminated units decode to zero bytes; the grown region is not
	// guaranteed fresh, so zero it first.
	clear(out)
	pos := 0
	if g == 1 {
		for u := 0; u < declen; u++ {
			if bm[u>>3]&(0x80>>(u&7)) != 0 {
				if pos >= len(data) {
					return nil, corruptf("RZE: truncated data bytes")
				}
				out[u] = data[pos]
				pos++
			}
		}
		return dst, nil
	}
	for u := 0; u < units; u++ {
		if bm[u>>3]&(0x80>>(u&7)) == 0 {
			continue
		}
		lo, hi := u*g, (u+1)*g
		if hi > declen {
			hi = declen
		}
		if pos+hi-lo > len(data) {
			return nil, corruptf("RZE: truncated data bytes")
		}
		copy(out[lo:hi], data[pos:pos+hi-lo])
		pos += hi - lo
	}
	return dst, nil
}
