// Package transforms implements the seven data transformations that make up
// the SPspeed, SPratio, DPspeed, and DPratio compression algorithms from the
// ASPLOS'25 paper "Efficient Lossless Compression of Scientific
// Floating-Point Data on CPUs and GPUs":
//
//   - DIFFMS: difference coding modulo 2^w followed by a two's-complement to
//     magnitude-sign conversion (diffms.go)
//   - MPLG: per-subchunk common leading-zero-bit elimination, enhanced with a
//     fallback magnitude-sign pass (mplg.go)
//   - BIT: bit transposition / bit-plane shuffle (bit.go)
//   - RZE: repeated zero elimination at byte granularity with a recursively
//     compressed bitmap (rze.go)
//   - FCM: finite-context-method duplicate-value detection via a sorted
//     (hash, index) array (fcm.go)
//   - RAZE: repeated adaptive zero elimination of the top k bits (raze.go)
//   - RARE: repeated adaptive repetition elimination of the top k bits
//     (rare.go)
//
// Every transform is exactly invertible. Transforms whose output length
// differs from their input length are self-describing: the encoded form
// starts with a uvarint giving the decoded length.
//
// # Buffer ownership
//
// The hot-path entry points are the append-into methods ForwardInto and
// InverseInto: they append their output to a caller-supplied dst (which may
// be nil) and return the extended slice, exactly like the append builtin.
// The caller owns dst before and after the call; the transform owns it
// during the call. dst must not overlap src/enc. Like append, the returned
// slice may or may not share dst's backing array (it reallocates only when
// capacity runs out), so callers must use the return value and must not
// retain other aliases of dst across the call. Internal per-call
// temporaries come from package-level sync.Pools, so a warmed steady state
// performs no heap allocation beyond what dst growth requires. Forward,
// Inverse, and InverseLimit are thin wrappers that pass a nil dst.
package transforms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// loadBits reads width bits (1 <= width <= 64) most-significant-bit-first
// at bit offset pos of pad: one big-endian 64-bit load plus at most one
// spill byte. pad must be padded so that 8 bytes past the byte holding the
// last addressed bit are readable (the decoders copy their bit regions
// into pooled scratch with 8 zero bytes appended for exactly this).
func loadBits(pad []byte, pos, width uint) uint64 {
	off := pos & 7
	x := binary.BigEndian.Uint64(pad[pos>>3:])
	avail := 64 - off
	if width <= avail {
		v := x >> (avail - width)
		if width < 64 {
			v &= 1<<width - 1
		}
		return v
	}
	spill := width - avail // 1..7
	return (x&(1<<avail-1))<<spill | uint64(pad[pos>>3+8])>>(8-spill)
}

// ErrCorrupt is returned when an encoded transform payload cannot be
// decoded. It always wraps a more specific description.
var ErrCorrupt = errors.New("transforms: corrupt payload")

// MaxDecoded caps the decoded size a self-describing per-chunk transform
// will allocate (64 MiB — far above any supported chunk size), so corrupt
// length prefixes fail cleanly instead of exhausting memory. Callers that
// know the expected decoded size (the container engine knows every chunk's)
// should pass a tighter bound via InverseLimit.
const MaxDecoded = 1 << 26

// NoLimit is the maxDecoded value meaning "no caller-supplied budget";
// per-chunk transforms still apply the intrinsic MaxDecoded cap.
const NoLimit = -1

// checkDecodedLen validates a decoded-length prefix against the intrinsic
// MaxDecoded cap and, when maxDecoded >= 0, the caller's tighter budget.
// Every decoder must call it before allocating anything sized by declen.
func checkDecodedLen(name string, declen uint64, maxDecoded int) error {
	cap := uint64(MaxDecoded)
	if maxDecoded >= 0 && uint64(maxDecoded) < cap {
		cap = uint64(maxDecoded)
	}
	if declen > cap {
		return corruptf("%s: decoded length %d exceeds budget %d", name, declen, cap)
	}
	return nil
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// grow extends b by n bytes (contents of the new tail are unspecified) and
// returns the extended slice, reallocating only when capacity is short.
func grow(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l >= n {
		return b[: l+n : cap(b)]
	}
	nb := make([]byte, l+n, (l+n)*3/2+64)
	copy(nb, b)
	return nb
}

// growCap ensures b has at least n bytes of spare capacity beyond its
// current length, without changing its length or contents.
func growCap(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// bufPool holds reusable byte buffers for transform temporaries and
// pipeline ping-ponging. Buffers are stored via pointer so Put does not
// allocate, and re-stored after use so grown capacity is retained.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(p *[]byte) { bufPool.Put(p) }

// pooledBytes resizes the pooled buffer *p to exactly n bytes (contents
// unspecified), storing any grown backing array back through p so the pool
// retains it.
func pooledBytes(p *[]byte, n int) []byte {
	b := *p
	if cap(b) < n {
		b = make([]byte, n)
		*p = b
	}
	return b[:n]
}

// intPool holds reusable []int scratch (the adaptive transforms' per-word
// lead counts).
var intPool = sync.Pool{New: func() any { return new([]int) }}

// growInts resizes a pooled []int to exactly n entries (contents
// unspecified).
func growInts(p *[]int, n int) []int {
	s := *p
	if cap(s) < n {
		s = make([]int, n)
		*p = s
	}
	return s[:n]
}

// Transform is one reversible stage of a compression pipeline. Forward may
// return a slice longer or shorter than src; Inverse must reproduce the
// exact Forward input.
//
// Every Inverse/InverseLimit/InverseInto implementation treats enc as
// hostile: arbitrary bytes must produce an error (never a panic), and no
// allocation may exceed the declared-and-validated decoded size.
type Transform interface {
	// Name identifies the transform in pipeline listings (e.g. "DIFFMS32").
	Name() string
	// Forward encodes one chunk. Equivalent to ForwardInto(nil, src).
	Forward(src []byte) []byte
	// ForwardInto appends the encoding of src to dst and returns the
	// extended slice (append semantics: the result may share dst's backing
	// array or be a reallocation). dst may be nil; it must not overlap src.
	// The output never aliases src.
	ForwardInto(dst, src []byte) []byte
	// Inverse decodes one chunk encoded by Forward.
	Inverse(enc []byte) ([]byte, error)
	// InverseLimit decodes like Inverse but additionally rejects — before
	// allocating — any encoding whose declared decoded size exceeds
	// maxDecoded bytes. maxDecoded == NoLimit means no caller bound;
	// intrinsic caps (MaxDecoded for per-chunk transforms, the encoded
	// length for FCM) still apply.
	InverseLimit(enc []byte, maxDecoded int) ([]byte, error)
	// InverseInto appends the decoded bytes to dst under the same budget
	// rules as InverseLimit and returns the extended slice. dst may be nil;
	// it must not overlap enc. On error the returned slice is nil and any
	// reallocated copy of dst is discarded, so callers pooling dst should
	// treat a failed call as having consumed the buffer's contents (the
	// capacity itself is only lost if the decode outgrew it before
	// failing).
	InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error)
}

// Pipeline chains transforms: Forward applies them left to right, Inverse
// right to left.
type Pipeline []Transform

// Forward runs every stage in order.
func (p Pipeline) Forward(src []byte) []byte {
	return p.ForwardInto(nil, src)
}

// ForwardInto appends the fully encoded form of src to dst and returns the
// extended slice. Intermediate stage outputs ping-pong between two pooled
// scratch buffers, so a warmed steady state allocates nothing beyond dst
// growth. The same ownership rules as Transform.ForwardInto apply.
func (p Pipeline) ForwardInto(dst, src []byte) []byte {
	n := len(p)
	switch n {
	case 0:
		return append(dst, src...)
	case 1:
		return p[0].ForwardInto(dst, src)
	}
	a, b := getBuf(), getBuf()
	defer putBuf(a)
	defer putBuf(b)
	cur := src
	for i := 0; i < n-1; i++ {
		s := a
		if i&1 == 1 {
			s = b
		}
		*s = p[i].ForwardInto((*s)[:0], cur)
		cur = *s
	}
	return p[n-1].ForwardInto(dst, cur)
}

// Inverse runs every stage's inverse in reverse order.
func (p Pipeline) Inverse(enc []byte) ([]byte, error) {
	return p.InverseInto(nil, enc, NoLimit)
}

// InverseLimit runs every stage's inverse in reverse order, bounding each
// stage's decoded allocation by the budget (see InverseInto).
func (p Pipeline) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	return p.InverseInto(nil, enc, maxDecoded)
}

// InverseInto appends the fully decoded form of enc to dst, bounding each
// stage's decoded allocation by the budget. Intermediate stage outputs can
// exceed the final decoded size by a small factor (an expanding RAZE/RARE
// stage emits up to ~1.16x its input when the bitmap model underestimates),
// so each stage gets 2*maxDecoded+64 of headroom — still proportional to
// the true decoded size, which is what bounds memory under hostile input.
// Intermediate outputs live in pooled scratch; only the final stage writes
// into dst. The fully decoded length is checked against maxDecoded exactly,
// so the budget holds even for stages (like the bit transposes) whose output
// size is fixed by their input and which therefore ignore the budget.
func (p Pipeline) InverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	out, err := p.inverseInto(dst, enc, maxDecoded)
	if err != nil {
		return nil, err
	}
	if maxDecoded >= 0 && len(out)-len(dst) > maxDecoded {
		return nil, corruptf("pipeline: decoded length %d exceeds budget %d", len(out)-len(dst), maxDecoded)
	}
	return out, nil
}

func (p Pipeline) inverseInto(dst, enc []byte, maxDecoded int) ([]byte, error) {
	stageBudget := maxDecoded
	if maxDecoded >= 0 {
		if maxDecoded < (math.MaxInt-64)/2 {
			stageBudget = 2*maxDecoded + 64
		} else {
			stageBudget = NoLimit
		}
	}
	n := len(p)
	switch n {
	case 0:
		return append(dst, enc...), nil
	case 1:
		return p[0].InverseInto(dst, enc, maxDecoded)
	}
	a, b := getBuf(), getBuf()
	defer putBuf(a)
	defer putBuf(b)
	cur := enc
	for i := n - 1; i > 0; i-- {
		s := a
		if i&1 == 1 {
			s = b
		}
		out, err := p[i].InverseInto((*s)[:0], cur, stageBudget)
		if err != nil {
			return nil, fmt.Errorf("stage %s: %w", p[i].Name(), err)
		}
		*s = out
		cur = out
	}
	out, err := p[0].InverseInto(dst, cur, stageBudget)
	if err != nil {
		return nil, fmt.Errorf("stage %s: %w", p[0].Name(), err)
	}
	return out, nil
}

// Names returns the stage names, e.g. ["DIFFMS32","BIT32","RZE"].
func (p Pipeline) Names() []string {
	names := make([]string, len(p))
	for i, t := range p {
		names[i] = t.Name()
	}
	return names
}
