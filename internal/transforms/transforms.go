// Package transforms implements the seven data transformations that make up
// the SPspeed, SPratio, DPspeed, and DPratio compression algorithms from the
// ASPLOS'25 paper "Efficient Lossless Compression of Scientific
// Floating-Point Data on CPUs and GPUs":
//
//   - DIFFMS: difference coding modulo 2^w followed by a two's-complement to
//     magnitude-sign conversion (diffms.go)
//   - MPLG: per-subchunk common leading-zero-bit elimination, enhanced with a
//     fallback magnitude-sign pass (mplg.go)
//   - BIT: bit transposition / bit-plane shuffle (bit.go)
//   - RZE: repeated zero elimination at byte granularity with a recursively
//     compressed bitmap (rze.go)
//   - FCM: finite-context-method duplicate-value detection via a sorted
//     (hash, index) array (fcm.go)
//   - RAZE: repeated adaptive zero elimination of the top k bits (raze.go)
//   - RARE: repeated adaptive repetition elimination of the top k bits
//     (rare.go)
//
// Every transform is exactly invertible. Transforms whose output length
// differs from their input length are self-describing: the encoded form
// starts with a uvarint giving the decoded length.
package transforms

import (
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is returned when an encoded transform payload cannot be
// decoded. It always wraps a more specific description.
var ErrCorrupt = errors.New("transforms: corrupt payload")

// MaxDecoded caps the decoded size a self-describing per-chunk transform
// will allocate (64 MiB — far above any supported chunk size), so corrupt
// length prefixes fail cleanly instead of exhausting memory. Callers that
// know the expected decoded size (the container engine knows every chunk's)
// should pass a tighter bound via InverseLimit.
const MaxDecoded = 1 << 26

// NoLimit is the maxDecoded value meaning "no caller-supplied budget";
// per-chunk transforms still apply the intrinsic MaxDecoded cap.
const NoLimit = -1

// checkDecodedLen validates a decoded-length prefix against the intrinsic
// MaxDecoded cap and, when maxDecoded >= 0, the caller's tighter budget.
// Every decoder must call it before allocating anything sized by declen.
func checkDecodedLen(name string, declen uint64, maxDecoded int) error {
	cap := uint64(MaxDecoded)
	if maxDecoded >= 0 && uint64(maxDecoded) < cap {
		cap = uint64(maxDecoded)
	}
	if declen > cap {
		return corruptf("%s: decoded length %d exceeds budget %d", name, declen, cap)
	}
	return nil
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Transform is one reversible stage of a compression pipeline. Forward may
// return a slice longer or shorter than src; Inverse must reproduce the
// exact Forward input.
//
// Every Inverse/InverseLimit implementation treats enc as hostile: arbitrary
// bytes must produce an error (never a panic), and no allocation may exceed
// the declared-and-validated decoded size.
type Transform interface {
	// Name identifies the transform in pipeline listings (e.g. "DIFFMS32").
	Name() string
	// Forward encodes one chunk.
	Forward(src []byte) []byte
	// Inverse decodes one chunk encoded by Forward.
	Inverse(enc []byte) ([]byte, error)
	// InverseLimit decodes like Inverse but additionally rejects — before
	// allocating — any encoding whose declared decoded size exceeds
	// maxDecoded bytes. maxDecoded == NoLimit means no caller bound;
	// intrinsic caps (MaxDecoded for per-chunk transforms, the encoded
	// length for FCM) still apply.
	InverseLimit(enc []byte, maxDecoded int) ([]byte, error)
}

// Pipeline chains transforms: Forward applies them left to right, Inverse
// right to left.
type Pipeline []Transform

// Forward runs every stage in order.
func (p Pipeline) Forward(src []byte) []byte {
	cur := src
	for _, t := range p {
		cur = t.Forward(cur)
	}
	return cur
}

// Inverse runs every stage's inverse in reverse order.
func (p Pipeline) Inverse(enc []byte) ([]byte, error) {
	return p.InverseLimit(enc, NoLimit)
}

// InverseLimit runs every stage's inverse in reverse order, bounding each
// stage's decoded allocation by the budget. Intermediate stage outputs can
// exceed the final decoded size by a small factor (an expanding RAZE/RARE
// stage emits up to ~1.16x its input when the bitmap model underestimates),
// so each stage gets 2*maxDecoded+64 of headroom — still proportional to
// the true decoded size, which is what bounds memory under hostile input.
func (p Pipeline) InverseLimit(enc []byte, maxDecoded int) ([]byte, error) {
	stageBudget := maxDecoded
	if maxDecoded >= 0 {
		if maxDecoded < (math.MaxInt-64)/2 {
			stageBudget = 2*maxDecoded + 64
		} else {
			stageBudget = NoLimit
		}
	}
	cur := enc
	for i := len(p) - 1; i >= 0; i-- {
		var err error
		cur, err = p[i].InverseLimit(cur, stageBudget)
		if err != nil {
			return nil, fmt.Errorf("stage %s: %w", p[i].Name(), err)
		}
	}
	return cur, nil
}

// Names returns the stage names, e.g. ["DIFFMS32","BIT32","RZE"].
func (p Pipeline) Names() []string {
	names := make([]string, len(p))
	for i, t := range p {
		names[i] = t.Name()
	}
	return names
}
