package transforms

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpcompress/internal/wordio"
)

// allTransforms returns every transform at both word sizes where relevant.
func allTransforms() []Transform {
	return []Transform{
		DiffMS{Word: wordio.W32},
		DiffMS{Word: wordio.W64},
		Bit{Word: wordio.W32},
		Bit{Word: wordio.W64},
		MPLG{Word: wordio.W32},
		MPLG{Word: wordio.W64},
		RZE{},
		RAZE{},
		RARE{},
		FCM{},
	}
}

// smoothFloats32 generates a smooth single-precision byte stream.
func smoothFloats32(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n*4)
	v := 100.0
	for i := 0; i < n; i++ {
		v += math.Sin(float64(i)/50) + rng.NormFloat64()*0.01
		wordio.PutU32(b, i, math.Float32bits(float32(v)))
	}
	return b
}

// smoothFloats64 generates a smooth double-precision byte stream.
func smoothFloats64(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n*8)
	v := 1e6
	for i := 0; i < n; i++ {
		v += math.Cos(float64(i)/30)*10 + rng.NormFloat64()*0.1
		wordio.PutU64(b, i, math.Float64bits(v))
	}
	return b
}

func roundtrip(t *testing.T, tr Transform, src []byte) {
	t.Helper()
	enc := tr.Forward(src)
	dec, err := tr.Inverse(enc)
	if err != nil {
		t.Fatalf("%s: inverse error on %d bytes: %v", tr.Name(), len(src), err)
	}
	if !bytes.Equal(dec, src) {
		i := 0
		for i < len(src) && i < len(dec) && src[i] == dec[i] {
			i++
		}
		t.Fatalf("%s: roundtrip mismatch on %d bytes at offset %d (got %d bytes back)",
			tr.Name(), len(src), i, len(dec))
	}
}

func TestRoundtripEmpty(t *testing.T) {
	for _, tr := range allTransforms() {
		roundtrip(t, tr, []byte{})
	}
}

func TestRoundtripSizes(t *testing.T) {
	// Exercise word-boundary edge cases, partial subchunks and tails.
	sizes := []int{1, 3, 4, 5, 7, 8, 9, 15, 16, 31, 63, 64, 65, 127, 128,
		255, 256, 257, 511, 512, 513, 1023, 4096, 16384, 16385, 16383}
	rng := rand.New(rand.NewSource(42))
	for _, n := range sizes {
		src := make([]byte, n)
		rng.Read(src)
		for _, tr := range allTransforms() {
			roundtrip(t, tr, src)
		}
	}
}

func TestRoundtripAllZero(t *testing.T) {
	src := make([]byte, 16384)
	for _, tr := range allTransforms() {
		roundtrip(t, tr, src)
	}
}

func TestRoundtripAllOnes(t *testing.T) {
	src := bytes.Repeat([]byte{0xFF}, 16384)
	for _, tr := range allTransforms() {
		roundtrip(t, tr, src)
	}
}

func TestRoundtripSmoothData(t *testing.T) {
	sp := smoothFloats32(4096, 1)
	dp := smoothFloats64(2048, 2)
	for _, tr := range allTransforms() {
		roundtrip(t, tr, sp)
		roundtrip(t, tr, dp)
	}
}

func TestRoundtripQuick(t *testing.T) {
	for _, tr := range allTransforms() {
		tr := tr
		t.Run(tr.Name(), func(t *testing.T) {
			f := func(src []byte) bool {
				enc := tr.Forward(src)
				dec, err := tr.Inverse(enc)
				return err == nil && bytes.Equal(dec, src)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestZigZagProperties(t *testing.T) {
	f32 := func(x uint32) bool { return wordio.UnZigZag32(wordio.ZigZag32(x)) == x }
	f64 := func(x uint64) bool { return wordio.UnZigZag64(wordio.ZigZag64(x)) == x }
	if err := quick.Check(f32, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Error(err)
	}
	// Small-magnitude values (positive or negative) map to small codes with
	// leading zeros — the property DIFFMS relies on.
	for _, d := range []int32{-4, -1, 0, 1, 4} {
		z := wordio.ZigZag32(uint32(d))
		if z > 8 {
			t.Errorf("zigzag(%d) = %d, want <= 8", d, z)
		}
	}
}

// TestDiffMSPaperExample checks DIFFMS against the worked example of
// Figure 2: inputs 2.5f, 2.0f, 1.75f.
func TestDiffMSPaperExample(t *testing.T) {
	vals := []float32{2.5, 2.0, 1.75}
	src := make([]byte, 12)
	for i, v := range vals {
		wordio.PutU32(src, i, math.Float32bits(v))
	}
	enc := DiffMS{Word: wordio.W32}.Forward(src)

	// First value is preserved (differenced against 0) then zigzagged:
	// 0x40200000<<1 = 0x80400000.
	if got := wordio.U32(enc, 0); got != math.Float32bits(2.5)<<1 {
		t.Errorf("word 0 = %#x, want %#x", got, math.Float32bits(2.5)<<1)
	}
	// 2.0 - 2.5 bits: 0x40000000-0x40200000 = -0x200000 -> magnitude-sign
	// 0x3FFFFF (sign in LSB): zigzag(-0x200000) = 0x3FFFFF.
	if got := wordio.U32(enc, 1); got != 0x3FFFFF {
		t.Errorf("word 1 = %#x, want 0x3fffff", got)
	}
	// The transformed words must all have leading zeros or the example's
	// leading-one runs converted; word 1 and 2 were negative diffs.
	if wordio.Clz32(wordio.U32(enc, 1)) == 0 {
		t.Error("word 1 still has a leading one after magnitude-sign conversion")
	}
}

// TestMPLGCompressesLeadingZeros verifies the core MPLG property: a chunk of
// small values shrinks to roughly keep/wordsize of its size.
func TestMPLGCompressesLeadingZeros(t *testing.T) {
	src := make([]byte, 16384)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4096; i++ {
		wordio.PutU32(src, i, uint32(rng.Intn(1<<12))) // 20+ leading zeros
	}
	enc := MPLG{Word: wordio.W32}.Forward(src)
	if len(enc) > len(src)*14/32 {
		t.Errorf("MPLG output %d bytes for 12-bit values in %d input bytes", len(enc), len(src))
	}
	roundtrip(t, MPLG{Word: wordio.W32}, src)
}

// TestMPLGFallback exercises the enhancement: when the subchunk max has no
// leading zeros, one extra magnitude-sign conversion is applied.
func TestMPLGFallback(t *testing.T) {
	src := make([]byte, 512)
	for i := 0; i < 128; i++ {
		// 0xFFFFFFxx values: no leading zeros, but zigzag gives 0x000001xx-ish.
		wordio.PutU32(src, i, 0xFFFFFF00|uint32(i))
	}
	enc := MPLG{Word: wordio.W32}.Forward(src)
	if len(enc) >= len(src) {
		t.Errorf("fallback did not help: %d -> %d bytes", len(src), len(enc))
	}
	roundtrip(t, MPLG{Word: wordio.W32}, src)
}

// TestBITGroupsPlanes verifies that after BIT, the plane holding the MSBs of
// an all-small-values chunk is entirely zero.
func TestBITGroupsPlanes(t *testing.T) {
	src := make([]byte, 32*4) // one 32-word block
	for i := 0; i < 32; i++ {
		wordio.PutU32(src, i, uint32(i)) // high 27 bits zero
	}
	enc := Bit{Word: wordio.W32}.Forward(src)
	// Planes 0..26 (MSB-side) must be all-zero words.
	for plane := 0; plane < 27; plane++ {
		if got := wordio.U32(enc, plane); got != 0 {
			t.Errorf("plane %d = %#x, want 0", plane, got)
		}
	}
	roundtrip(t, Bit{Word: wordio.W32}, src)
}

// TestRZEZeroHeavy verifies RZE collapses a zero-dominated chunk to a small
// fraction of its size, including the recursive bitmap compression.
func TestRZEZeroHeavy(t *testing.T) {
	src := make([]byte, 16384)
	for i := 0; i < 100; i++ {
		src[16000+i*3] = byte(i + 1)
	}
	enc := RZE{}.Forward(src)
	// 100 data bytes + compressed bitmap; far below the naive 2048-byte
	// bitmap floor.
	if len(enc) > 700 {
		t.Errorf("RZE output %d bytes for 100 non-zero bytes", len(enc))
	}
	roundtrip(t, RZE{}, src)
}

// TestRZEBitmapRecursionDepth checks the 16384->2048->256->32-bit reduction
// of §3.2 by measuring the all-zero-input overhead: a fully zero chunk must
// compress to nearly nothing.
func TestRZEAllZeroOverhead(t *testing.T) {
	src := make([]byte, 16384)
	enc := RZE{}.Forward(src)
	// length prefix + ~3 recursion levels of tiny bitmaps.
	if len(enc) > 16 {
		t.Errorf("all-zero chunk encoded to %d bytes, want <= 16", len(enc))
	}
}

// TestRepeatBitmapLen pins the length-only pricing helper against the real
// encoder across bitmap shapes: all-zero, all-ones, sparse, dense-random,
// run-structured, and misaligned/odd lengths (including the <= floor case).
func TestRepeatBitmapLen(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]byte{
		{}, {0xff}, make([]byte, 3), make([]byte, 4), make([]byte, 5),
		make([]byte, 2048), make([]byte, 2049), make([]byte, 777),
	}
	dense := make([]byte, 2048)
	rng.Read(dense)
	cases = append(cases, dense)
	sparse := make([]byte, 2048)
	for i := 0; i < 20; i++ {
		sparse[rng.Intn(len(sparse))] = byte(1 + rng.Intn(255))
	}
	cases = append(cases, sparse)
	runs := make([]byte, 1024)
	for i := range runs {
		if i/100%2 == 0 {
			runs[i] = 0xaa
		}
	}
	cases = append(cases, runs, runs[1:], runs[3:500])
	for i, bm := range cases {
		want := len(EncodeRepeatBitmap(bm, nil))
		if got := RepeatBitmapLen(bm); got != want {
			t.Errorf("case %d (len %d): RepeatBitmapLen = %d, encoder emits %d", i, len(bm), got, want)
		}
	}
}

// TestFCMPaperExample mirrors Figure 6: the sequence a b a b c a b. With a
// three-value context, the second (a,b) pair after context (a,b,a)/(b,a,b)
// repeats and must be encoded as distances, as must the final (a,b).
func TestFCMPaperExample(t *testing.T) {
	a, b, c := math.Float64bits(1.5), math.Float64bits(2.5), math.Float64bits(3.5)
	seq := []uint64{a, b, a, b, c, a, b}
	src := wordio.Bytes64(seq, len(seq)*8)
	enc := FCM{}.Forward(src)
	// Layout: uvarint len, then value array, then distance array.
	hn := 8 // fixed FCM header
	vals := wordio.Words64(enc[hn:hn+56], false)
	dists := wordio.Words64(enc[hn+56:hn+112], false)

	// Index 2 ("a" with context b,a,_) matches index 0 ("a" with the same
	// hash only if contexts agree) — contexts differ here, so rather than
	// asserting exact paper indices we assert the invariants: every entry is
	// either a literal (dist 0) or a valid backref to an equal value.
	for i := range seq {
		if dists[i] == 0 {
			if vals[i] != seq[i] {
				t.Errorf("index %d: literal %#x != input %#x", i, vals[i], seq[i])
			}
		} else {
			j := i - int(dists[i])
			if j < 0 || seq[j] != seq[i] {
				t.Errorf("index %d: bad backref distance %d", i, dists[i])
			}
			if vals[i] != 0 {
				t.Errorf("index %d: matched entry has non-zero value %#x", i, vals[i])
			}
		}
	}
	roundtrip(t, FCM{}, src)
}

// TestFCMFindsFarRepeats verifies the motivation for FCM: repeats thousands
// of values apart are matched, unlike with difference coding.
func TestFCMFindsFarRepeats(t *testing.T) {
	n := 10000
	words := make([]uint64, n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n/2; i++ {
		words[i] = math.Float64bits(rng.NormFloat64())
	}
	copy(words[n/2:], words[:n/2]) // exact repeat of the first half
	src := wordio.Bytes64(words, n*8)
	enc := FCM{}.Forward(src)
	hn := 8 // fixed FCM header
	dists := wordio.Words64(enc[hn+n*8:hn+2*n*8], false)
	matched := 0
	for _, d := range dists[n/2:] {
		if d != 0 {
			matched++
		}
	}
	if matched < n/2*9/10 {
		t.Errorf("only %d of %d repeated values matched", matched, n/2)
	}
	roundtrip(t, FCM{}, src)
}

// TestFCMParallelDecodeMatchesSequential forces both decode paths on the
// same encoded data.
func TestFCMParallelDecodeMatchesSequential(t *testing.T) {
	n := fcmParallelMin + 1234 // above the parallel threshold
	words := make([]uint64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range words {
		if i > 100 && rng.Intn(3) == 0 {
			words[i] = words[rng.Intn(i)] // seed long match chains
		} else {
			words[i] = math.Float64bits(rng.NormFloat64())
		}
	}
	src := wordio.Bytes64(words, n*8)
	enc := FCM{}.Forward(src)
	hn := 8 // fixed FCM header
	vals := wordio.Words64(enc[hn:hn+n*8], false)
	dists := wordio.Words64(enc[hn+n*8:hn+2*n*8], false)

	seqVals := append([]uint64(nil), vals...)
	seqDists := append([]uint64(nil), dists...)
	seq, err := fcmDecodeSequential(seqVals, seqDists)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fcmDecodeParallel(vals, dists)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("decode mismatch at %d: seq %#x par %#x", i, seq[i], par[i])
		}
	}
	for i := range seq {
		if seq[i] != words[i] {
			t.Fatalf("decode wrong at %d", i)
		}
	}
}

// TestFCMRejectsBadDistance ensures corrupt forward references fail cleanly.
func TestFCMRejectsBadDistance(t *testing.T) {
	words := []uint64{1, 2, 3, 4}
	src := wordio.Bytes64(words, 32)
	enc := FCM{}.Forward(src)
	hn := 8 // fixed FCM header
	// Overwrite distance[0] with an impossible backref.
	wordio.PutU64(enc[hn+32:], 0, 99)
	if _, err := (FCM{}).Inverse(enc); err == nil {
		t.Error("corrupt distance accepted")
	}
}

// TestRAZEPicksGoodSplit: all values share 40 leading zero bits, so RAZE
// should spend at most ~24 bits per word plus bitmap.
func TestRAZEPicksGoodSplit(t *testing.T) {
	n := 2048
	words := make([]uint64, n)
	rng := rand.New(rand.NewSource(5))
	for i := range words {
		words[i] = uint64(rng.Int63n(1 << 24))
	}
	src := wordio.Bytes64(words, n*8)
	enc := RAZE{}.Forward(src)
	if len(enc) > n*25/8+n/8+64 {
		t.Errorf("RAZE output %d bytes for 24-bit values (n=%d)", len(enc), n)
	}
	roundtrip(t, RAZE{}, src)
}

// TestRAREEliminatesCommonPrefixes: words share their top 32 bits with the
// prior word, so RARE's bitmap removes nearly all top pieces.
func TestRAREEliminatesCommonPrefixes(t *testing.T) {
	n := 2048
	words := make([]uint64, n)
	rng := rand.New(rand.NewSource(6))
	base := uint64(0xDEADBEEF) << 32
	for i := range words {
		words[i] = base | uint64(rng.Uint32())
	}
	src := wordio.Bytes64(words, n*8)
	enc := RARE{}.Forward(src)
	// ~32 bits/word bottoms + 1 bit/word bitmap + one kept piece.
	if len(enc) > n*34/8+64 {
		t.Errorf("RARE output %d bytes, want about %d", len(enc), n*33/8)
	}
	roundtrip(t, RARE{}, src)
}

// TestAdaptiveSplitModel cross-checks bestSplit's closed-form size against a
// brute-force bit count.
func TestAdaptiveSplitModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	words := make([]uint64, 512)
	for i := range words {
		words[i] = uint64(rng.Int63()) >> uint(rng.Intn(64))
	}
	lead := leadZeros(words)
	k := bestSplit(lead)
	model := func(k int) int {
		if k == 0 {
			return 64 * len(words)
		}
		kept := 0
		for _, l := range lead {
			if l < k {
				kept++
			}
		}
		return len(words) + kept*k + (64-k)*len(words)
	}
	best := model(k)
	for kk := 0; kk <= 64; kk++ {
		if model(kk) < best {
			t.Fatalf("bestSplit picked k=%d (size %d) but k=%d gives %d", k, best, kk, model(kk))
		}
	}
}

// TestPipelineInverseOrder ensures Pipeline applies inverses in reverse.
func TestPipelineInverseOrder(t *testing.T) {
	p := Pipeline{
		DiffMS{Word: wordio.W32},
		Bit{Word: wordio.W32},
		RZE{},
	}
	src := smoothFloats32(4096, 11)
	enc := p.Forward(src)
	if len(enc) >= len(src) {
		t.Errorf("SPratio pipeline expanded smooth data: %d -> %d", len(src), len(enc))
	}
	dec, err := p.Inverse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Error("pipeline roundtrip mismatch")
	}
	names := p.Names()
	want := []string{"DIFFMS32", "BIT32", "RZE"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("stage %d = %s, want %s", i, names[i], want[i])
		}
	}
}

// TestInverseRejectsGarbage feeds random bytes to every self-describing
// inverse and requires no panics (errors are fine).
func TestInverseRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tr := range allTransforms() {
		for trial := 0; trial < 200; trial++ {
			junk := make([]byte, rng.Intn(200))
			rng.Read(junk)
			dec, err := tr.Inverse(junk)
			_ = dec
			_ = err // must simply not panic
		}
	}
}

// uvarintForTest decodes a LEB128 prefix (mirrors bitio.Uvarint without the
// import cycle concerns of test helpers).
func uvarintForTest(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// TestRZEGranularityAblation tests the paper's design note: byte
// granularity finds more zero units than word granularity on
// BIT-transposed data, so it compresses better.
func TestRZEGranularityAblation(t *testing.T) {
	// Typical post-BIT data: long zero runs then scattered non-zero bytes.
	src := make([]byte, 16384)
	rng := rand.New(rand.NewSource(77))
	for i := 12000; i < len(src); i++ {
		if rng.Intn(3) > 0 {
			src[i] = byte(rng.Intn(255) + 1)
		}
	}
	sizes := map[int]int{}
	for _, g := range []int{1, 2, 4} {
		z := RZE{Granularity: g}
		enc := z.Forward(src)
		dec, err := z.Inverse(enc)
		if err != nil || !bytes.Equal(dec, src) {
			t.Fatalf("granularity %d: roundtrip failed", g)
		}
		sizes[g] = len(enc)
	}
	if !(sizes[1] <= sizes[2] && sizes[2] <= sizes[4]) {
		t.Errorf("byte granularity should win: sizes %v", sizes)
	}
	if (RZE{Granularity: 4}).Name() != "RZE32" || (RZE{}).Name() != "RZE" {
		t.Error("granularity names wrong")
	}
}

// TestRZEGranularityQuick: every granularity must be exactly invertible.
func TestRZEGranularityQuick(t *testing.T) {
	for _, g := range []int{1, 2, 3, 4, 8} {
		z := RZE{Granularity: g}
		f := func(src []byte) bool {
			dec, err := z.Inverse(z.Forward(src))
			return err == nil && bytes.Equal(dec, src)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("granularity %d: %v", g, err)
		}
	}
}
