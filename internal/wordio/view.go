package wordio

// Word-slice views.
//
// The transform kernels in internal/transforms spend almost all of their
// time reading and writing little-endian words of a []byte chunk. View32
// and View64 alias such a buffer as a []uint32/[]uint64 sharing the same
// backing array — no copy, no per-word decode — when the platform allows
// direct reinterpretation. The contract:
//
//   - A view is only returned on little-endian targets (and never under
//     the purego build tag), and only when the buffer's base address is
//     aligned to the word size. Otherwise ok is false and the caller must
//     take its reference byte-accessor path (U32/PutU32 and friends),
//     which produces byte-identical results on every platform.
//   - The view covers the buffer's complete words: len(view) == len(b)/w.
//     Trailing bytes that do not fill a word are the caller's to handle,
//     exactly as in the accessor path.
//   - The view aliases b: writes through the view are writes to b, and b
//     must outlive the view. Callers must not grow b (append) while a
//     view of it is live.
//
// Because a view changes only how bytes are addressed, never their
// values, kernels built on views are guaranteed to emit the same bytes
// as their accessor-path references; internal/transforms pins that with
// differential tests over misaligned and odd-length buffers.

// View32 returns b's complete 32-bit words aliased as a []uint32, plus
// true, when direct reinterpretation is possible (see the package notes
// above). A buffer with no complete word yields an empty view and true.
func View32(b []byte) ([]uint32, bool) { return view32(b) }

// View64 returns b's complete 64-bit words aliased as a []uint64, plus
// true, when direct reinterpretation is possible (see the package notes
// above). A buffer with no complete word yields an empty view and true.
func View64(b []byte) ([]uint64, bool) { return view64(b) }
