// Fallback for big-endian targets and purego builds: no aliasing, every
// caller takes its byte-accessor reference path.

//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm) || purego

package wordio

func view32(b []byte) ([]uint32, bool) { return nil, len(b) < 4 }

func view64(b []byte) ([]uint64, bool) { return nil, len(b) < 8 }
