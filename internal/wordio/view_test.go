package wordio

import (
	"encoding/binary"
	"testing"
)

// TestViewValuesMatchAccessors checks that, whenever a view is granted, it
// reads and writes exactly the words the accessor path sees.
func TestViewValuesMatchAccessors(t *testing.T) {
	raw := make([]byte, 8*16+5)
	for i := range raw {
		raw[i] = byte(i*37 + 11)
	}
	for off := 0; off <= 8; off++ {
		b := raw[off:]
		if w, ok := View32(b); ok {
			if len(w) != len(b)/4 {
				t.Fatalf("off %d: view32 len %d, want %d", off, len(w), len(b)/4)
			}
			for i := range w {
				if w[i] != U32(b, i) {
					t.Fatalf("off %d word %d: view %08x accessor %08x", off, i, w[i], U32(b, i))
				}
			}
			if len(w) > 0 {
				w[0] ^= 0xdeadbeef
				if U32(b, 0) != w[0] {
					t.Fatalf("off %d: write through view32 not visible to accessor", off)
				}
				w[0] ^= 0xdeadbeef
			}
		}
		if w, ok := View64(b); ok {
			for i := range w {
				if w[i] != U64(b, i) {
					t.Fatalf("off %d word %d: view %016x accessor %016x", off, i, w[i], U64(b, i))
				}
			}
		}
	}
}

// TestViewShortBuffers pins that buffers without a complete word yield an
// empty view (ok true) rather than a panic or a bogus slice.
func TestViewShortBuffers(t *testing.T) {
	for n := 0; n < 4; n++ {
		if w, ok := View32(make([]byte, n)); !ok || len(w) != 0 {
			t.Fatalf("View32(len %d) = (%d words, %v), want empty ok view", n, len(w), ok)
		}
	}
	for n := 0; n < 8; n++ {
		if w, ok := View64(make([]byte, n)); !ok || len(w) != 0 {
			t.Fatalf("View64(len %d) = (%d words, %v), want empty ok view", n, len(w), ok)
		}
	}
}

// TestViewEndianness pins the little-endian interpretation: when a view is
// granted, word 0 must equal the little-endian decoding of the first bytes.
func TestViewEndianness(t *testing.T) {
	b := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if w, ok := View64(b); ok && len(w) == 1 {
		if want := binary.LittleEndian.Uint64(b); w[0] != want {
			t.Fatalf("view64 word %016x, want little-endian %016x", w[0], want)
		}
	}
}
