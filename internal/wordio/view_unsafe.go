// Word views by pointer reinterpretation. Only little-endian targets may
// alias bytes as words (the wire format is little-endian), and only when
// the base address is word-aligned; misaligned buffers fall back to the
// copying/accessor path via ok == false. The purego tag disables the
// unsafe path entirely for auditing or portability builds.

//go:build (386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm) && !purego

package wordio

import "unsafe"

func view32(b []byte) ([]uint32, bool) {
	n := len(b) / 4
	if n == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))&3 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n), true
}

func view64(b []byte) ([]uint64, bool) {
	n := len(b) / 8
	if n == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))&7 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), true
}
