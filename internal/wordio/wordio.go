// Package wordio provides helpers for viewing byte slices as little-endian
// 32- or 64-bit integer words and for the bit-level scalar operations shared
// by the compression transforms (zigzag mapping, leading-zero counts).
//
// All transforms in this repository operate on the IEEE 754 bit patterns of
// the input values, never on their numeric float interpretation, which is
// what guarantees lossless operation.
package wordio

import (
	"encoding/binary"
	"math/bits"
)

// WordSize identifies the integer granularity a transform operates at.
type WordSize int

const (
	// W32 processes data as 32-bit words (single precision).
	W32 WordSize = 4
	// W64 processes data as 64-bit words (double precision).
	W64 WordSize = 8
)

// Bits returns the number of bits per word.
func (w WordSize) Bits() int { return int(w) * 8 }

// String implements fmt.Stringer.
func (w WordSize) String() string {
	if w == W32 {
		return "u32"
	}
	return "u64"
}

// ZigZag32 converts a two's-complement 32-bit value into magnitude-sign
// format: (x<<1) ^ (x>>31) with an arithmetic right shift. Values with many
// leading ones (small negatives) and values with many leading zeros (small
// positives) both map to values with only leading zeros.
func ZigZag32(x uint32) uint32 {
	return (x << 1) ^ uint32(int32(x)>>31)
}

// UnZigZag32 inverts ZigZag32.
func UnZigZag32(x uint32) uint32 {
	return (x >> 1) ^ -(x & 1)
}

// ZigZag64 is the 64-bit variant of ZigZag32.
func ZigZag64(x uint64) uint64 {
	return (x << 1) ^ uint64(int64(x)>>63)
}

// UnZigZag64 inverts ZigZag64.
func UnZigZag64(x uint64) uint64 {
	return (x >> 1) ^ -(x & 1)
}

// U32 reads the i-th little-endian 32-bit word of b.
func U32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i*4:]) }

// PutU32 writes the i-th little-endian 32-bit word of b.
func PutU32(b []byte, i int, v uint32) { binary.LittleEndian.PutUint32(b[i*4:], v) }

// U64 reads the i-th little-endian 64-bit word of b.
func U64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }

// PutU64 writes the i-th little-endian 64-bit word of b.
func PutU64(b []byte, i int, v uint64) { binary.LittleEndian.PutUint64(b[i*8:], v) }

// Words32 reinterprets b as a fresh []uint32. The slice length is
// len(b)/4; trailing bytes that do not fill a word are ignored.
func Words32(b []byte) []uint32 {
	n := len(b) / 4
	w := make([]uint32, n)
	for i := 0; i < n; i++ {
		w[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return w
}

// Words64 reinterprets b as a fresh []uint64, zero-padding a trailing
// partial word if pad is true (otherwise partial bytes are ignored).
func Words64(b []byte, pad bool) []uint64 {
	n := len(b) / 8
	rem := len(b) - n*8
	total := n
	if pad && rem > 0 {
		total++
	}
	w := make([]uint64, total)
	for i := 0; i < n; i++ {
		w[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	if pad && rem > 0 {
		var last [8]byte
		copy(last[:], b[n*8:])
		w[n] = binary.LittleEndian.Uint64(last[:])
	}
	return w
}

// Bytes32 serializes words back to little-endian bytes.
func Bytes32(w []uint32) []byte {
	b := make([]byte, len(w)*4)
	for i, v := range w {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	return b
}

// Bytes64 serializes words back to little-endian bytes, truncated to n bytes.
func Bytes64(w []uint64, n int) []byte {
	b := make([]byte, len(w)*8)
	for i, v := range w {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	if n >= 0 && n < len(b) {
		b = b[:n]
	}
	return b
}

// Clz32 counts leading zero bits.
func Clz32(x uint32) int { return bits.LeadingZeros32(x) }

// Clz64 counts leading zero bits.
func Clz64(x uint64) int { return bits.LeadingZeros64(x) }

// Mix64 is a strong 64-bit finalizer (splitmix64 variant) used by the FCM
// hash and the dataset generators.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
