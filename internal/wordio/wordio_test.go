package wordio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZigZagSmallMagnitudes(t *testing.T) {
	// ZigZag must interleave: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
	want := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, -3: 5}
	for x, z := range want {
		if got := ZigZag64(uint64(x)); got != z {
			t.Errorf("ZigZag64(%d) = %d, want %d", x, got, z)
		}
	}
	for x, z := range want {
		if got := ZigZag32(uint32(int32(x))); got != uint32(z) {
			t.Errorf("ZigZag32(%d) = %d, want %d", x, got, z)
		}
	}
}

func TestZigZagRoundtrip(t *testing.T) {
	if err := quick.Check(func(x uint32) bool { return UnZigZag32(ZigZag32(x)) == x }, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(x uint64) bool { return UnZigZag64(ZigZag64(x)) == x }, nil); err != nil {
		t.Error(err)
	}
}

func TestWordsBytesRoundtrip(t *testing.T) {
	f32 := func(b []byte) bool {
		w := Words32(b)
		back := Bytes32(w)
		return bytes.Equal(back, b[:len(b)/4*4])
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Error(err)
	}
	f64 := func(b []byte) bool {
		w := Words64(b, false)
		back := Bytes64(w, -1)
		return bytes.Equal(back, b[:len(b)/8*8])
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Error(err)
	}
}

func TestWords64Padding(t *testing.T) {
	b := []byte{1, 2, 3} // partial word
	w := Words64(b, true)
	if len(w) != 1 {
		t.Fatalf("len = %d", len(w))
	}
	if w[0] != 0x030201 {
		t.Errorf("padded word = %#x", w[0])
	}
	if got := Words64(b, false); len(got) != 0 {
		t.Errorf("unpadded should drop partial word, got %d words", len(got))
	}
}

func TestBytes64Truncation(t *testing.T) {
	w := []uint64{0x0807060504030201}
	b := Bytes64(w, 5)
	if !bytes.Equal(b, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("got %v", b)
	}
}

func TestPutGetU32U64(t *testing.T) {
	b := make([]byte, 16)
	PutU32(b, 1, 0xDEADBEEF)
	if U32(b, 1) != 0xDEADBEEF {
		t.Error("U32 roundtrip failed")
	}
	PutU64(b, 1, 0x0123456789ABCDEF)
	if U64(b, 1) != 0x0123456789ABCDEF {
		t.Error("U64 roundtrip failed")
	}
}

func TestClz(t *testing.T) {
	if Clz32(0) != 32 || Clz64(0) != 64 {
		t.Error("clz of zero wrong")
	}
	if Clz32(1) != 31 || Clz64(1) != 63 {
		t.Error("clz of one wrong")
	}
	if Clz32(0x80000000) != 0 || Clz64(1<<63) != 0 {
		t.Error("clz of MSB wrong")
	}
}

func TestMix64Distributes(t *testing.T) {
	// Adjacent inputs must produce wildly different outputs (avalanche).
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) == 0 {
		// splitmix finalizer maps 0 to 0; our variant must not be used on
		// raw zero contexts without awareness. Document the behaviour.
		t.Log("Mix64(0) == 0 (fixed point), acceptable for FCM contexts")
	}
}

func TestWordSizeString(t *testing.T) {
	if W32.String() != "u32" || W64.String() != "u64" {
		t.Error("WordSize strings wrong")
	}
	if W32.Bits() != 32 || W64.Bits() != 64 {
		t.Error("WordSize bits wrong")
	}
}
