package fpcompress

import (
	"errors"
	"fmt"
	"io"

	"fpcompress/internal/container"
	"fpcompress/internal/core"
)

// Random access: because every 16 kB chunk is compressed independently
// (paper §3), a compressed block supports decompressing arbitrary byte
// ranges without touching the rest — the capability ZFP markets for
// compressed arrays. It is available for every algorithm without a
// whole-input pre-stage, including the adaptive Auto32/Auto64 modes and
// the windowed variants (Options.WindowedFCM), whose FCM predictor resets
// per chunk. Only default (whole-input) DPratio blocks are excluded: their
// FCM stage spans the whole input, making chunks interdependent, so
// opening one returns ErrNoRandomAccess — recompress with
// Options.WindowedFCM to get randomly accessible DPratio blocks.

// ErrNoRandomAccess reports a block whose chunks are not independent.
var ErrNoRandomAccess = errors.New("fpcompress: block does not support random access (whole-input FCM spans chunks; compress with Options.WindowedFCM for random access)")

// RandomAccess provides ranged reads over one compressed block.
type RandomAccess struct {
	header     *container.Header
	codec      container.Codec
	maxDecoded int
}

// OpenRandomAccess parses a compressed block for ranged reads. The block
// is retained (not copied); it must not be mutated while in use. data may
// be hostile: the container layout is fully validated here, and each
// chunk later decodes under the opts.MaxDecodedSize budget (which bounds
// the per-read allocation; the paper's default chunks are 16 kB).
func OpenRandomAccess(data []byte, opts *Options) (*RandomAccess, error) {
	a, err := core.FromContainer(data)
	if err != nil {
		return nil, err
	}
	if a.Pre != nil {
		return nil, ErrNoRandomAccess
	}
	h, err := container.Parse(data)
	if err != nil {
		return nil, err
	}
	return &RandomAccess{
		header:     h,
		codec:      a.ChunkCodec(),
		maxDecoded: opts.params().DecodeBudget(),
	}, nil
}

// Len returns the original (uncompressed) length in bytes.
func (ra *RandomAccess) Len() int { return ra.header.OriginalLen }

// ChunkSize returns the independent-chunk granularity in bytes.
func (ra *RandomAccess) ChunkSize() int { return ra.header.ChunkSize }

// ReadAt implements io.ReaderAt over the uncompressed data, decompressing
// only the chunks the range touches. Per the io.ReaderAt contract it
// returns io.EOF (not a private error) when the read stops at end of
// data, so io.SectionReader, io.ReadFull, and errors.Is(err, io.EOF)
// compose with it.
func (ra *RandomAccess) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("fpcompress: negative offset %d", off)
	}
	n := 0
	cs := ra.header.ChunkSize
	for n < len(p) && off+int64(n) < int64(ra.header.OriginalLen) {
		pos := int(off) + n
		ci := pos / cs
		dec, err := ra.header.DecompressChunkLimit(ci, ra.codec, ra.maxDecoded)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], dec[pos-ci*cs:])
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// OpenRandomAccessPartial is OpenRandomAccess for damaged blocks: it
// tolerates torn tails (payload bytes missing off the end) that strict
// parsing rejects, so the surviving chunks stay readable via ReadAtPartial.
// Self-healing (v3) metadata must still pass its own CRC32-C — with the
// tables unverifiable nothing can be located, and ErrHeaderCorrupt is
// returned.
func OpenRandomAccessPartial(data []byte, opts *Options) (*RandomAccess, error) {
	a, err := core.FromContainer(data)
	if err != nil {
		return nil, err
	}
	if a.Pre != nil {
		return nil, ErrNoRandomAccess
	}
	h, err := container.ParseSalvage(data)
	if err != nil {
		return nil, err
	}
	return &RandomAccess{
		header:     h,
		codec:      a.ChunkCodec(),
		maxDecoded: opts.params().DecodeBudget(),
	}, nil
}

// ReadAtPartial is ReadAt for damaged blocks: chunk-level corruption is
// repaired from XOR parity where the block carries it, and chunks lost
// beyond repair are zero-filled in p instead of failing the read. The
// returned ChunkReport records the outcome per chunk — chunks outside the
// requested range stay ChunkSkipped. The error mirrors ReadAt's contract:
// io.EOF when the read stops at end of data, and fatal conditions (a chunk
// whose declared size exceeds the decode budget) abort with the bytes
// recovered so far.
func (ra *RandomAccess) ReadAtPartial(p []byte, off int64) (int, *ChunkReport, error) {
	rep := ra.header.NewReport()
	if off < 0 {
		return 0, rep, fmt.Errorf("fpcompress: negative offset %d", off)
	}
	n := 0
	cs := ra.header.ChunkSize
	for n < len(p) && off+int64(n) < int64(ra.header.OriginalLen) {
		pos := int(off) + n
		ci := pos / cs
		dec, state, err := ra.header.DecompressChunkRepair(ci, ra.codec, ra.maxDecoded)
		rep.States[ci] = state
		if state == ChunkQuarantined {
			_, hi := rep.Span(ci)
			m := min(hi-pos, len(p)-n)
			clear(p[n : n+m])
			n += m
			continue
		}
		if err != nil {
			return n, rep, err
		}
		n += copy(p[n:], dec[pos-ci*cs:])
	}
	if n < len(p) {
		return n, rep, io.EOF
	}
	return n, rep, nil
}

// errShortRead is the typed error Float32At/Float64At return for requests
// past the declared end of data. It wraps io.EOF (the cause is end of
// data), so errors.Is works with either sentinel.
var errShortRead = fmt.Errorf("fpcompress: read past end of data: %w", io.EOF)

// Float32At decompresses count float32 values starting at value index.
func (ra *RandomAccess) Float32At(index, count int) ([]float32, error) {
	if index < 0 || count < 0 {
		return nil, fmt.Errorf("fpcompress: negative index %d or count %d", index, count)
	}
	// Bounding the request by the declared length up front keeps count*4
	// from overflowing int and refuses the allocation for reads that
	// could only fail later anyway.
	if vals := int64(ra.Len()) / 4; int64(index) > vals || int64(count) > vals-int64(index) {
		return nil, errShortRead
	}
	buf := make([]byte, count*4)
	if _, err := ra.ReadAt(buf, int64(index)*4); err != nil {
		return nil, err
	}
	return BytesFloat32(buf), nil
}

// Float64At decompresses count float64 values starting at value index.
func (ra *RandomAccess) Float64At(index, count int) ([]float64, error) {
	if index < 0 || count < 0 {
		return nil, fmt.Errorf("fpcompress: negative index %d or count %d", index, count)
	}
	if vals := int64(ra.Len()) / 8; int64(index) > vals || int64(count) > vals-int64(index) {
		return nil, errShortRead
	}
	buf := make([]byte, count*8)
	if _, err := ra.ReadAt(buf, int64(index)*8); err != nil {
		return nil, err
	}
	return BytesFloat64(buf), nil
}
