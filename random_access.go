package fpcompress

import (
	"errors"
	"fmt"

	"fpcompress/internal/container"
	"fpcompress/internal/core"
	"fpcompress/internal/transforms"
)

// Random access: because every 16 kB chunk is compressed independently
// (paper §3), a compressed block supports decompressing arbitrary byte
// ranges without touching the rest — the capability ZFP markets for
// compressed arrays. It is available for SPspeed, SPratio, and DPspeed;
// DPratio's whole-input FCM stage makes its chunks interdependent, so
// opening a DPratio block returns ErrNoRandomAccess.

// ErrNoRandomAccess reports an algorithm whose chunks are not independent.
var ErrNoRandomAccess = errors.New("fpcompress: algorithm does not support random access (DPratio's FCM stage spans the whole input)")

// RandomAccess provides ranged reads over one compressed block.
type RandomAccess struct {
	header  *container.Header
	chunked transforms.Pipeline
}

// OpenRandomAccess parses a compressed block for ranged reads. The block
// is retained (not copied); it must not be mutated while in use.
func OpenRandomAccess(data []byte) (*RandomAccess, error) {
	a, err := core.FromContainer(data)
	if err != nil {
		return nil, err
	}
	if a.Pre != nil {
		return nil, ErrNoRandomAccess
	}
	h, err := container.Parse(data)
	if err != nil {
		return nil, err
	}
	return &RandomAccess{header: h, chunked: a.Chunked}, nil
}

// Len returns the original (uncompressed) length in bytes.
func (ra *RandomAccess) Len() int { return ra.header.OriginalLen }

// ChunkSize returns the independent-chunk granularity in bytes.
func (ra *RandomAccess) ChunkSize() int { return ra.header.ChunkSize }

// ReadAt implements io.ReaderAt semantics over the uncompressed data,
// decompressing only the chunks the range touches.
func (ra *RandomAccess) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(ra.header.OriginalLen) {
		return 0, fmt.Errorf("fpcompress: offset %d out of range [0,%d]", off, ra.header.OriginalLen)
	}
	n := 0
	cs := ra.header.ChunkSize
	codec := pipelineCodec{ra.chunked}
	for n < len(p) && int(off)+n < ra.header.OriginalLen {
		pos := int(off) + n
		ci := pos / cs
		dec, err := ra.header.DecompressChunk(ci, codec)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], dec[pos-ci*cs:])
	}
	if n < len(p) {
		return n, errShortRead
	}
	return n, nil
}

var errShortRead = errors.New("fpcompress: read past end of data")

// Float32At decompresses count float32 values starting at value index.
func (ra *RandomAccess) Float32At(index, count int) ([]float32, error) {
	buf := make([]byte, count*4)
	if _, err := ra.ReadAt(buf, int64(index)*4); err != nil {
		return nil, err
	}
	return BytesFloat32(buf), nil
}

// Float64At decompresses count float64 values starting at value index.
func (ra *RandomAccess) Float64At(index, count int) ([]float64, error) {
	buf := make([]byte, count*8)
	if _, err := ra.ReadAt(buf, int64(index)*8); err != nil {
		return nil, err
	}
	return BytesFloat64(buf), nil
}

// pipelineCodec adapts a transform pipeline to container.Codec (mirrors
// core's internal adapter).
type pipelineCodec struct{ p transforms.Pipeline }

func (c pipelineCodec) Forward(chunk []byte) []byte        { return c.p.Forward(chunk) }
func (c pipelineCodec) Inverse(enc []byte) ([]byte, error) { return c.p.Inverse(enc) }
