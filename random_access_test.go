package fpcompress

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRandomAccessReadAt(t *testing.T) {
	src := Float32Bytes(sampleFloats32(100000, 11))
	for _, alg := range []Algorithm{SPspeed, SPratio, DPspeed} {
		blob, err := Compress(alg, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := OpenRandomAccess(blob, nil)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if ra.Len() != len(src) {
			t.Fatalf("%v: Len %d, want %d", alg, ra.Len(), len(src))
		}
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			off := rng.Intn(len(src))
			n := rng.Intn(min(40000, len(src)-off)) + 1
			buf := make([]byte, n)
			if _, err := ra.ReadAt(buf, int64(off)); err != nil {
				t.Fatalf("%v trial %d: %v", alg, trial, err)
			}
			if !bytes.Equal(buf, src[off:off+n]) {
				t.Fatalf("%v trial %d: range [%d,%d) wrong", alg, trial, off, off+n)
			}
		}
	}
}

func TestRandomAccessDPratioRefused(t *testing.T) {
	blob, err := Compress(DPratio, make([]byte, 100000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRandomAccess(blob, nil); !errors.Is(err, ErrNoRandomAccess) {
		t.Errorf("want ErrNoRandomAccess, got %v", err)
	}
}

func TestRandomAccessTypedReads(t *testing.T) {
	vals := sampleFloats32(50000, 12)
	blob, _ := CompressFloat32s(SPratio, vals, nil)
	ra, err := OpenRandomAccess(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ra.Float32At(12345, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(vals[12345+i]) {
			t.Fatalf("value %d differs", i)
		}
	}

	dvals := sampleFloats64(30000, 13)
	dblob, _ := CompressFloat64s(DPspeed, dvals, nil)
	dra, err := OpenRandomAccess(dblob, nil)
	if err != nil {
		t.Fatal(err)
	}
	dgot, err := dra.Float64At(29990, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dgot {
		if math.Float64bits(dgot[i]) != math.Float64bits(dvals[29990+i]) {
			t.Fatalf("double value %d differs", i)
		}
	}
}

func TestRandomAccessBounds(t *testing.T) {
	blob, _ := Compress(SPspeed, make([]byte, 1000), nil)
	ra, err := OpenRandomAccess(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadAt(make([]byte, 10), -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := ra.ReadAt(make([]byte, 10), 995); err == nil {
		t.Error("read past end accepted")
	}
	n, err := ra.ReadAt(make([]byte, 5), 995)
	if err != nil || n != 5 {
		t.Errorf("tail read: n=%d err=%v", n, err)
	}
	if _, err := ra.ReadAt(nil, 1000); err != nil {
		t.Errorf("empty read at end: %v", err)
	}
}

func TestRandomAccessGarbage(t *testing.T) {
	if _, err := OpenRandomAccess([]byte("junk"), nil); err == nil {
		t.Error("garbage accepted")
	}
}
