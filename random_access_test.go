package fpcompress

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
)

func TestRandomAccessReadAt(t *testing.T) {
	src := Float32Bytes(sampleFloats32(100000, 11))
	for _, alg := range []Algorithm{SPspeed, SPratio, DPspeed} {
		blob, err := Compress(alg, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := OpenRandomAccess(blob, nil)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if ra.Len() != len(src) {
			t.Fatalf("%v: Len %d, want %d", alg, ra.Len(), len(src))
		}
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			off := rng.Intn(len(src))
			n := rng.Intn(min(40000, len(src)-off)) + 1
			buf := make([]byte, n)
			if _, err := ra.ReadAt(buf, int64(off)); err != nil {
				t.Fatalf("%v trial %d: %v", alg, trial, err)
			}
			if !bytes.Equal(buf, src[off:off+n]) {
				t.Fatalf("%v trial %d: range [%d,%d) wrong", alg, trial, off, off+n)
			}
		}
	}
}

func TestRandomAccessDPratioRefused(t *testing.T) {
	blob, err := Compress(DPratio, make([]byte, 100000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRandomAccess(blob, nil); !errors.Is(err, ErrNoRandomAccess) {
		t.Errorf("want ErrNoRandomAccess, got %v", err)
	}
}

func TestRandomAccessTypedReads(t *testing.T) {
	vals := sampleFloats32(50000, 12)
	blob, _ := CompressFloat32s(SPratio, vals, nil)
	ra, err := OpenRandomAccess(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ra.Float32At(12345, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(vals[12345+i]) {
			t.Fatalf("value %d differs", i)
		}
	}

	dvals := sampleFloats64(30000, 13)
	dblob, _ := CompressFloat64s(DPspeed, dvals, nil)
	dra, err := OpenRandomAccess(dblob, nil)
	if err != nil {
		t.Fatal(err)
	}
	dgot, err := dra.Float64At(29990, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dgot {
		if math.Float64bits(dgot[i]) != math.Float64bits(dvals[29990+i]) {
			t.Fatalf("double value %d differs", i)
		}
	}
}

func TestRandomAccessBounds(t *testing.T) {
	blob, _ := Compress(SPspeed, make([]byte, 1000), nil)
	ra, err := OpenRandomAccess(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadAt(make([]byte, 10), -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := ra.ReadAt(make([]byte, 10), 995); err == nil {
		t.Error("read past end accepted")
	}
	n, err := ra.ReadAt(make([]byte, 5), 995)
	if err != nil || n != 5 {
		t.Errorf("tail read: n=%d err=%v", n, err)
	}
	if _, err := ra.ReadAt(nil, 1000); err != nil {
		t.Errorf("empty read at end: %v", err)
	}
}

// TestRandomAccessEOFSemantics pins ReadAt to the io.ReaderAt contract:
// a read stopping at end of data returns the bytes read plus io.EOF (the
// standard sentinel, not a private error), an exact-end read returns nil,
// and zero-length reads at or past the end succeed with n=0.
func TestRandomAccessEOFSemantics(t *testing.T) {
	src := Float32Bytes(sampleFloats32(250, 17)) // 1000 bytes
	blob, err := Compress(SPspeed, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := OpenRandomAccess(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	end := int64(len(src))
	cases := []struct {
		name    string
		size    int
		off     int64
		wantN   int
		wantErr error
	}{
		{"exact end", 10, end - 10, 10, nil},
		{"short at end", 10, end - 4, 4, io.EOF},
		{"at end", 10, end, 0, io.EOF},
		{"past end", 10, end + 5, 0, io.EOF},
		{"zero-length at end", 0, end, 0, nil},
		{"zero-length past end", 0, end + 100, 0, nil},
	}
	for _, c := range cases {
		n, err := ra.ReadAt(make([]byte, c.size), c.off)
		if n != c.wantN || !errors.Is(err, c.wantErr) {
			t.Errorf("%s: ReadAt(%d bytes, off %d) = (%d, %v), want (%d, %v)",
				c.name, c.size, c.off, n, err, c.wantN, c.wantErr)
		}
		if c.wantErr == nil && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
	}
	// Typed value reads past the end keep their descriptive error but now
	// wrap io.EOF, since end-of-data is the cause.
	if _, err := ra.Float32At(240, 100); !errors.Is(err, io.EOF) {
		t.Errorf("Float32At past end: %v does not wrap io.EOF", err)
	}
}

// TestRandomAccessSectionReader composes ReadAt with io.SectionReader —
// the canonical io.ReaderAt consumer — and streams a middle section plus
// the tail through io.ReadAll, which only terminates cleanly if ReadAt's
// EOF semantics are exact.
func TestRandomAccessSectionReader(t *testing.T) {
	src := Float64Bytes(sampleFloats64(40000, 19))
	blob, err := Compress(DPspeed, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := OpenRandomAccess(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := io.NewSectionReader(ra, 100000, 50000)
	got, err := io.ReadAll(mid)
	if err != nil {
		t.Fatalf("section read: %v", err)
	}
	if !bytes.Equal(got, src[100000:150000]) {
		t.Fatal("section read differs from source")
	}
	// A section extending past the end: ReadAll must stop at the data's
	// end without an error.
	tail := io.NewSectionReader(ra, int64(len(src))-777, 10000)
	got, err = io.ReadAll(tail)
	if err != nil {
		t.Fatalf("tail section read: %v", err)
	}
	if !bytes.Equal(got, src[len(src)-777:]) {
		t.Fatal("tail section read differs from source")
	}
}

func TestRandomAccessGarbage(t *testing.T) {
	if _, err := OpenRandomAccess([]byte("junk"), nil); err == nil {
		t.Error("garbage accepted")
	}
}

// TestRandomAccessPartial exercises the degraded random-access path on a
// damaged v3 container: reads through intact chunks repair or verify
// transparently, reads through lost chunks zero-fill and quarantine, and
// untouched chunks stay ChunkSkipped in the report.
func TestRandomAccessPartial(t *testing.T) {
	src := Float32Bytes(sampleFloats32(20000, 5))
	cs := 4096

	t.Run("parity-repair", func(t *testing.T) {
		blob, err := Compress(SPspeed, src, &Options{ChunkSize: cs, Parity: 4})
		if err != nil {
			t.Fatal(err)
		}
		corruptStoredChunk(t, blob, 1, 77)
		ra, err := OpenRandomAccessPartial(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 3*cs)
		n, rep, err := ra.ReadAtPartial(buf, 0)
		if err != nil || n != len(buf) {
			t.Fatalf("ReadAtPartial = %d, %v", n, err)
		}
		if !bytes.Equal(buf, src[:len(buf)]) {
			t.Error("repairing read returned wrong bytes")
		}
		if rep.States[1] != ChunkRepaired {
			t.Errorf("chunk 1 state = %v, want ChunkRepaired", rep.States[1])
		}
		if rep.States[0] != ChunkOK || rep.States[2] != ChunkOK {
			t.Errorf("intact chunks = %v/%v, want ChunkOK", rep.States[0], rep.States[2])
		}
		for i := 3; i < len(rep.States); i++ {
			if rep.States[i] != ChunkSkipped {
				t.Fatalf("untouched chunk %d state = %v, want ChunkSkipped", i, rep.States[i])
			}
		}
	})

	t.Run("quarantine-zero-fill", func(t *testing.T) {
		blob, err := Compress(SPspeed, src, &Options{ChunkSize: cs, Integrity: true})
		if err != nil {
			t.Fatal(err)
		}
		corruptStoredChunk(t, blob, 2, 78)
		// The strict opener still accepts (the container parses); reads
		// through the lost chunk must fail there, not return zeros.
		raStrict, err := OpenRandomAccess(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := raStrict.ReadAt(make([]byte, cs), int64(2*cs)); err == nil {
			t.Error("strict ReadAt returned data from a corrupt chunk")
		}
		ra, err := OpenRandomAccessPartial(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		// A read spanning chunks 1..3: intact parts byte-exact, the lost
		// chunk zero-filled and quarantined.
		buf := make([]byte, 3*cs)
		n, rep, err := ra.ReadAtPartial(buf, int64(cs))
		if err != nil || n != len(buf) {
			t.Fatalf("ReadAtPartial = %d, %v", n, err)
		}
		if !bytes.Equal(buf[:cs], src[cs:2*cs]) || !bytes.Equal(buf[2*cs:], src[3*cs:4*cs]) {
			t.Error("intact spans of the partial read differ from the original")
		}
		for _, b := range buf[cs : 2*cs] {
			if b != 0 {
				t.Fatal("quarantined span not zero-filled")
			}
		}
		if rep.States[2] != ChunkQuarantined {
			t.Errorf("chunk 2 state = %v, want ChunkQuarantined", rep.States[2])
		}
		if got := rep.Counts(); got.OK != 2 || got.Quarantined != 1 {
			t.Errorf("report = %s, want 2 ok + 1 quarantined", rep.Summary())
		}
	})

	t.Run("torn-container", func(t *testing.T) {
		blob, err := Compress(SPspeed, src, &Options{ChunkSize: cs, Integrity: true})
		if err != nil {
			t.Fatal(err)
		}
		torn := blob[:len(blob)-7] // loses part of the final chunk
		if _, err := OpenRandomAccess(torn, nil); err == nil {
			t.Error("strict open accepted a torn container")
		}
		ra, err := OpenRandomAccessPartial(torn, nil)
		if err != nil {
			t.Fatalf("salvage open: %v", err)
		}
		// The head reads clean; the tail comes back zero-filled.
		head := make([]byte, cs)
		if _, rep, err := ra.ReadAtPartial(head, 0); err != nil || !bytes.Equal(head, src[:cs]) {
			t.Fatalf("head read: %v (state %v)", err, rep.States[0])
		}
		last := len(src) / cs
		tail := make([]byte, len(src)-last*cs)
		n, rep, err := ra.ReadAtPartial(tail, int64(last*cs))
		if err != nil || n != len(tail) {
			t.Fatalf("tail read = %d, %v", n, err)
		}
		if rep.States[last] != ChunkQuarantined {
			t.Errorf("torn chunk state = %v, want ChunkQuarantined", rep.States[last])
		}
		for _, b := range tail {
			if b != 0 {
				t.Fatal("torn span not zero-filled")
			}
		}
	})
}
