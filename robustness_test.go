package fpcompress

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestCorruptionNeverPanics mutates valid compressed blocks in every
// position class (header, size table, payload) and requires Decompress to
// either fail cleanly or return data — never panic or hang.
func TestCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, alg := range []Algorithm{SPspeed, SPratio, DPspeed, DPratio} {
		src := Float64Bytes(sampleFloats64(20000, 2))
		blob, err := Compress(alg, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 400; trial++ {
			mutated := append([]byte(nil), blob...)
			switch trial % 4 {
			case 0: // single bit flip anywhere
				i := rng.Intn(len(mutated))
				mutated[i] ^= 1 << rng.Intn(8)
			case 1: // byte overwrite in the first 64 bytes (header region)
				mutated[rng.Intn(min(64, len(mutated)))] = byte(rng.Int())
			case 2: // truncation
				mutated = mutated[:rng.Intn(len(mutated))]
			case 3: // garbage extension
				mutated = append(mutated, byte(rng.Int()), byte(rng.Int()))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v trial %d: panic: %v", alg, trial, r)
					}
				}()
				Decompress(mutated, nil)
			}()
		}
	}
}

// TestConcurrentUse exercises the package from many goroutines sharing
// nothing but the package API.
func TestConcurrentUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			algs := []Algorithm{SPspeed, SPratio, DPspeed, DPratio}
			src := Float64Bytes(sampleFloats64(5000+g*100, int64(g)))
			for i := 0; i < 5; i++ {
				alg := algs[(g+i)%4]
				blob, err := Compress(alg, src, &Options{Parallelism: 1 + g%4})
				if err != nil {
					t.Error(err)
					return
				}
				back, err := Decompress(blob, nil)
				if err != nil || !bytes.Equal(back, src) {
					t.Errorf("goroutine %d: roundtrip failed", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDeterministicOutput pins the compressed form: the same input bytes
// must produce identical output across runs and parallelism settings (the
// format is deterministic, which the GPU/CPU compatibility story relies
// on).
func TestDeterministicOutput(t *testing.T) {
	src := Float32Bytes(sampleFloats32(60000, 3))
	for _, alg := range []Algorithm{SPspeed, SPratio} {
		a, _ := Compress(alg, src, &Options{Parallelism: 1})
		b, _ := Compress(alg, src, &Options{Parallelism: 7})
		c, _ := Compress(alg, src, nil)
		if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
			t.Errorf("%v: output differs across parallelism", alg)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
