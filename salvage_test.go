package fpcompress

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"fpcompress/internal/container"
	"fpcompress/internal/faultnet"
	"fpcompress/internal/server"
)

// This file is the storage-fault acceptance suite for the self-healing
// container layout (v3): deterministic bit rot and torn writes injected
// through internal/faultnet's storage helpers, with the salvage guarantees
// checked after every wound — strict decode self-heals single losses per
// parity group, partial decode returns every verifiable byte and
// quarantines (zero-fills) the rest, and a degraded server ships partial
// data with the typed partial-result status.

// salvageRounds scales the per-seed round count like the chaos soak:
// CHAOSTIME is an integer multiplier (default 1 → 12 rounds per seed).
func salvageRounds() int {
	n := 12
	if env := os.Getenv("CHAOSTIME"); env != "" {
		if mult, err := strconv.Atoi(env); err == nil && mult > 0 {
			n *= mult
		}
	}
	return n
}

// corruptStoredChunk flips bits inside chunk i's stored payload bytes.
// ChunkPayload aliases blob, so the damage lands in place. Raw chunks need
// several flips to defeat the odds of only touching dead bits; compressed
// chunks usually fail on one, but extra flips cost nothing.
func corruptStoredChunk(t *testing.T, blob []byte, i int, seed int64) {
	t.Helper()
	h, err := container.Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := h.ChunkPayload(i)
	if err != nil {
		t.Fatal(err)
	}
	faultnet.BitRot(pl, seed, 6)
}

// TestSalvageSoak is the bit-rot soak: many deterministic damage rounds
// against v3 containers with and without parity. Replay a failing round
// with the CHAOS_SEED it prints; CHAOSTIME multiplies the round count.
func TestSalvageSoak(t *testing.T) {
	seeds := []int64{3, 41, 777}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seeds = []int64{s}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { salvageSoak(t, seed) })
	}
}

func salvageSoak(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rounds := salvageRounds()
	for round := 0; round < rounds; round++ {
		algs := []Algorithm{SPspeed, SPratio, Auto32}
		alg := algs[rng.Intn(len(algs))]
		parity := []int{2, 4, 8}[rng.Intn(3)]
		nvals := 2000 + rng.Intn(30000)
		src := Float32Bytes(sampleFloats32(nvals, seed*1000+int64(round)))
		opts := &Options{ChunkSize: 4096, Parity: parity}
		blob, err := Compress(alg, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		h, err := container.Parse(blob)
		if err != nil {
			t.Fatal(err)
		}
		ctx := fmt.Sprintf("round %d (%v, parity %d, %d chunks)\nreplay: CHAOS_SEED=%d go test -race -run TestSalvageSoak .",
			round, alg, parity, h.ChunkCount, seed)

		// One corrupt chunk per parity group: strict decode must repair
		// every one of them and return the exact original bytes.
		healed := append([]byte(nil), blob...)
		groups := (h.ChunkCount + parity - 1) / parity
		for g := 0; g < groups; g++ {
			victim := g*parity + rng.Intn(min(parity, h.ChunkCount-g*parity))
			corruptStoredChunk(t, healed, victim, seed+int64(round*100+g))
		}
		dec, err := Decompress(healed, nil)
		if err != nil {
			t.Fatalf("strict decode did not self-heal one loss per group: %v\n%s", err, ctx)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("self-healed decode is not byte-identical\n%s", ctx)
		}

		// Random shotgun bit rot (anywhere in the container, possibly the
		// metadata): conditional guarantees. If strict decode accepts, the
		// bytes must be exact (flips may land in dead padding bits or be
		// repaired). Otherwise partial decode must either refuse with a
		// typed error or return a report whose intact chunks are byte-exact
		// and whose quarantined spans are zero-filled.
		shot := append([]byte(nil), blob...)
		faultnet.BitRot(shot, seed^int64(round*31+7), 1+rng.Intn(8))
		if dec, err := Decompress(shot, nil); err == nil {
			if !bytes.Equal(dec, src) {
				t.Fatalf("strict decode accepted shotgun damage with wrong bytes\n%s", ctx)
			}
		} else if dec, rep, perr := DecompressPartial(shot, nil); perr == nil {
			if len(dec) != rep.OriginalLen {
				t.Fatalf("partial length %d, report declares %d\n%s", len(dec), rep.OriginalLen, ctx)
			}
			// The report may describe a different geometry than the
			// pristine container if the flips hit the (checksummed, so
			// normally fatal) metadata; a consistent report over the same
			// geometry lets us compare spans directly.
			if rep.ChunkSize == h.ChunkSize && len(rep.States) == h.ChunkCount && rep.OriginalLen == len(src) {
				for i, s := range rep.States {
					lo, hi := rep.Span(i)
					switch s {
					case ChunkOK, ChunkRepaired:
						if !bytes.Equal(dec[lo:hi], src[lo:hi]) {
							t.Fatalf("chunk %d reported %v but bytes differ\n%s", i, s, ctx)
						}
					case ChunkQuarantined:
						for _, b := range dec[lo:hi] {
							if b != 0 {
								t.Fatalf("quarantined chunk %d not zero-filled\n%s", i, ctx)
							}
						}
					}
				}
			}
		}

		// Double loss in one group: strict decode must refuse with the
		// typed chunk error; partial decode quarantines both, keeps every
		// other chunk byte-exact, and names the lost ranges.
		if h.ChunkCount >= 2 && parity >= 2 {
			g := rng.Intn(groups)
			span := min(parity, h.ChunkCount-g*parity)
			if span >= 2 {
				double := append([]byte(nil), blob...)
				a, b := g*parity, g*parity+1+rng.Intn(span-1)
				corruptStoredChunk(t, double, a, seed+int64(round)*7+1)
				corruptStoredChunk(t, double, b, seed+int64(round)*7+2)
				if _, err := Decompress(double, nil); !errors.Is(err, ErrChunkCorrupt) {
					t.Fatalf("double loss: strict decode = %v, want ErrChunkCorrupt\n%s", err, ctx)
				}
				dec, rep, err := DecompressPartial(double, nil)
				if err != nil {
					t.Fatalf("double loss: partial decode refused: %v\n%s", err, ctx)
				}
				if c := rep.Counts(); c.Quarantined != 2 {
					t.Fatalf("double loss: %s, want exactly 2 quarantined\n%s", rep.Summary(), ctx)
				}
				for i, s := range rep.States {
					lo, hi := rep.Span(i)
					if s == ChunkQuarantined {
						if i != a && i != b {
							t.Fatalf("double loss: wrong chunk %d quarantined\n%s", i, ctx)
						}
						continue
					}
					if !bytes.Equal(dec[lo:hi], src[lo:hi]) {
						t.Fatalf("double loss: surviving chunk %d bytes differ\n%s", i, ctx)
					}
				}
			}
		}

		// Torn tail: cut the container mid-payload (past the metadata).
		// Strict parse refuses; partial decode recovers every chunk whose
		// bytes survive — with parity, even one chunk just past the cut.
		metaLen := len(blob) - h.CompressedPayloadLen() - h.ParityPayloadLen()
		cut := faultnet.TornWrite(len(blob), seed+int64(round), metaLen+1)
		if cut < len(blob) {
			torn := blob[:cut]
			if _, err := Decompress(torn, nil); err == nil {
				t.Fatalf("strict decode accepted a torn container\n%s", ctx)
			}
			dec, rep, err := DecompressPartial(torn, nil)
			if err != nil {
				t.Fatalf("torn tail: partial decode refused: %v\n%s", err, ctx)
			}
			if len(dec) != len(src) {
				t.Fatalf("torn tail: got %d bytes, want %d\n%s", len(dec), len(src), ctx)
			}
			for i, s := range rep.States {
				lo, hi := rep.Span(i)
				if s == ChunkOK || s == ChunkRepaired {
					if !bytes.Equal(dec[lo:hi], src[lo:hi]) {
						t.Fatalf("torn tail: chunk %d reported %v but bytes differ\n%s", i, s, ctx)
					}
				}
			}
		}
	}
}

// TestDegradedServer is the end-to-end resilience test: a degraded-mode
// server receives a bit-rotted v3 container (integrity only, no parity —
// unrepairable), salvages the intact chunks, and the client surfaces the
// partial data together with ErrPartialResult; the Stats counters record
// the degraded response and the quarantined chunk.
func TestDegradedServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Concurrency: 2,
		Degraded:    true,
		IdlePoll:    10 * time.Millisecond,
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()

	c, err := Dial(ln.Addr().String(), &ClientOptions{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := Float32Bytes(sampleFloats32(20000, 42))
	blob, err := Compress(SPspeed, src, &Options{ChunkSize: 4096, Integrity: true})
	if err != nil {
		t.Fatal(err)
	}

	// The happy path stays StatusOK.
	back, err := c.Decompress(blob)
	if err != nil || !bytes.Equal(back, src) {
		t.Fatalf("clean decompress over the wire failed: %v", err)
	}
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// Rot one chunk and decompress again: data + typed partial error.
	bad := append([]byte(nil), blob...)
	corruptStoredChunk(t, bad, 2, 1234)
	got, err := c.Decompress(bad)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("degraded decompress error = %v, want ErrPartialResult", err)
	}
	if len(got) != len(src) {
		t.Fatalf("partial response carries %d bytes, want %d", len(got), len(src))
	}
	lo, hi := 2*4096, 3*4096
	if !bytes.Equal(got[:lo], src[:lo]) || !bytes.Equal(got[hi:], src[hi:]) {
		t.Error("intact ranges of the partial response differ from the original")
	}
	for _, b := range got[lo:hi] {
		if b != 0 {
			t.Fatal("quarantined range of the partial response is not zero-filled")
		}
	}

	after, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.DegradedResponses != before.DegradedResponses+1 {
		t.Errorf("DegradedResponses %d -> %d, want +1", before.DegradedResponses, after.DegradedResponses)
	}
	if after.ChunksQuarantined <= before.ChunksQuarantined {
		t.Errorf("ChunksQuarantined %d -> %d, want an increase", before.ChunksQuarantined, after.ChunksQuarantined)
	}
	if after.ChunksVerified <= before.ChunksVerified {
		t.Errorf("ChunksVerified %d -> %d, want an increase", before.ChunksVerified, after.ChunksVerified)
	}

	// A strict (default) server keeps refusing the same container.
	lnStrict, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvStrict := server.New(server.Config{Concurrency: 1, IdlePoll: 10 * time.Millisecond})
	doneStrict := make(chan error, 1)
	go func() { doneStrict <- srvStrict.Serve(lnStrict) }()
	defer func() {
		srvStrict.Close()
		<-doneStrict
	}()
	cs, err := Dial(lnStrict.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	var re *RemoteError
	if _, err := cs.Decompress(bad); !errors.As(err, &re) {
		t.Fatalf("strict server accepted a damaged container: %v", err)
	}
}
