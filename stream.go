package fpcompress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming support: a Writer frames the stream into independently
// compressed segments so unbounded value streams (e.g. instrument
// acquisition, MPI traffic) can be compressed without holding everything in
// memory; a Reader decodes such a stream. Each frame is one self-describing
// Compress block preceded by a fixed 4-byte little-endian length.

// DefaultSegmentSize is the Writer's default framing granularity. Larger
// segments improve the ratio (more context per frame, one header amortized
// over more data); smaller segments reduce latency and memory.
const DefaultSegmentSize = 4 << 20

// DefaultMaxFrameSize is the largest frame a Reader accepts unless
// Options.MaxFrameSize overrides it. The frame length is attacker
// controlled (a 4-byte header), so it is validated against this cap
// before any allocation; 64 MiB comfortably covers DefaultSegmentSize
// output while bounding what corrupt input can make a Reader allocate.
const DefaultMaxFrameSize = 64 << 20

// ErrStream reports a malformed framed stream.
var ErrStream = errors.New("fpcompress: malformed stream")

// Writer compresses a stream of raw value bytes into framed segments.
// Close must be called to flush the final partial segment.
type Writer struct {
	w       io.Writer
	alg     Algorithm
	opts    *Options
	segSize int
	buf     []byte
	cbuf    []byte // reused compressed-frame buffer (steady state: zero alloc)
	err     error
}

// NewWriter returns a streaming compressor writing frames to w.
// segmentSize <= 0 selects DefaultSegmentSize. Note that readers cap
// accepted frames at Options.MaxFrameSize (default DefaultMaxFrameSize),
// so streams written with larger segments need a matching reader option.
func NewWriter(w io.Writer, alg Algorithm, segmentSize int, opts *Options) *Writer {
	if segmentSize <= 0 {
		segmentSize = DefaultSegmentSize
	}
	return &Writer{w: w, alg: alg, opts: opts, segSize: segmentSize}
}

// Write implements io.Writer over raw (uncompressed) bytes.
func (sw *Writer) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	total := len(p)
	for len(p) > 0 {
		room := sw.segSize - len(sw.buf)
		if room > len(p) {
			room = len(p)
		}
		sw.buf = append(sw.buf, p[:room]...)
		p = p[room:]
		if len(sw.buf) == sw.segSize {
			if err := sw.flush(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

func (sw *Writer) flush() error {
	if len(sw.buf) == 0 {
		return nil
	}
	blob, err := AppendCompress(sw.cbuf[:0], sw.alg, sw.buf, sw.opts)
	if err == nil {
		sw.cbuf = blob
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(blob)))
		if _, werr := sw.w.Write(hdr[:]); werr != nil {
			err = werr
		} else if _, werr := sw.w.Write(blob); werr != nil {
			err = werr
		}
	}
	sw.buf = sw.buf[:0]
	if err != nil {
		sw.err = err
	}
	return err
}

// Close flushes the final segment. It does not close the underlying writer.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.flush()
}

// Reader decompresses a stream produced by Writer. The stream may be
// hostile: each frame's length is validated against Options.MaxFrameSize
// before the frame is read, and each frame's declared decompressed size
// against Options.MaxDecodedSize before the output is allocated, so a
// corrupt or adversarial stream fails with a typed error instead of
// panicking or exhausting memory.
type Reader struct {
	r    io.Reader
	opts *Options
	buf  []byte // decoded bytes not yet delivered (window into dec)
	dec  []byte // reused decode buffer backing buf
	blob []byte // reused compressed-frame buffer
	err  error
}

// NewReader returns a streaming decompressor reading frames from r.
func NewReader(r io.Reader, opts *Options) *Reader {
	return &Reader{r: r, opts: opts}
}

// Read implements io.Reader over the decompressed bytes.
func (sr *Reader) Read(p []byte) (int, error) {
	for len(sr.buf) == 0 {
		if sr.err != nil {
			return 0, sr.err
		}
		if err := sr.fill(); err != nil {
			sr.err = err
			if len(sr.buf) == 0 {
				return 0, err
			}
		}
	}
	n := copy(p, sr.buf)
	sr.buf = sr.buf[n:]
	return n, nil
}

func (sr *Reader) fill() error {
	var hdr [4]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: truncated frame header", ErrStream)
		}
		return err // io.EOF at a frame boundary is clean end-of-stream
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	maxFrame := DefaultMaxFrameSize
	if sr.opts != nil && sr.opts.MaxFrameSize > 0 {
		maxFrame = sr.opts.MaxFrameSize
	}
	if n == 0 || uint64(n) > uint64(maxFrame) {
		return fmt.Errorf("%w: frame of %d bytes (max %d)", ErrStream, n, maxFrame)
	}
	// Both the compressed frame and its decoded bytes land in buffers
	// reused across frames: fill only runs once buf is fully delivered, so
	// dec's backing array is free to overwrite.
	if cap(sr.blob) < int(n) {
		sr.blob = make([]byte, n)
	}
	blob := sr.blob[:n]
	if _, err := io.ReadFull(sr.r, blob); err != nil {
		return fmt.Errorf("%w: truncated frame body", ErrStream)
	}
	dec, err := AppendDecompress(sr.dec[:0], blob, sr.opts)
	if err != nil {
		return err
	}
	sr.dec = dec
	sr.buf = dec
	return nil
}
