package fpcompress

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func TestStreamRoundtrip(t *testing.T) {
	src := Float64Bytes(sampleFloats64(300000, 42)) // 2.4 MB
	for _, segSize := range []int{0, 1 << 16, 1 << 20, len(src) * 2} {
		var packed bytes.Buffer
		w := NewWriter(&packed, DPratio, segSize, nil)
		// Write in awkward pieces to exercise buffering.
		rng := rand.New(rand.NewSource(1))
		rest := src
		for len(rest) > 0 {
			n := 1 + rng.Intn(100000)
			if n > len(rest) {
				n = len(rest)
			}
			if _, err := w.Write(rest[:n]); err != nil {
				t.Fatal(err)
			}
			rest = rest[n:]
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if packed.Len() >= len(src) {
			t.Errorf("segment %d: stream did not compress (%d -> %d)", segSize, len(src), packed.Len())
		}
		got, err := io.ReadAll(NewReader(bytes.NewReader(packed.Bytes()), nil))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("segment %d: stream roundtrip mismatch", segSize)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	var packed bytes.Buffer
	w := NewWriter(&packed, SPspeed, 0, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(NewReader(&packed, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty stream decoded to %d bytes", len(got))
	}
}

func TestStreamTruncation(t *testing.T) {
	var packed bytes.Buffer
	w := NewWriter(&packed, SPspeed, 1<<16, nil)
	w.Write(make([]byte, 200000))
	w.Close()
	// Chop the stream mid-frame.
	cut := packed.Bytes()[:packed.Len()-10]
	_, err := io.ReadAll(NewReader(bytes.NewReader(cut), nil))
	if err == nil {
		t.Error("truncated stream decoded without error")
	}
}

func TestStreamGarbageHeader(t *testing.T) {
	_, err := io.ReadAll(NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}), nil))
	if err == nil {
		t.Error("garbage frame header accepted")
	}
}

func TestStreamSmallReads(t *testing.T) {
	src := Float32Bytes(sampleFloats32(50000, 7))
	var packed bytes.Buffer
	w := NewWriter(&packed, SPratio, 1<<15, nil)
	w.Write(src)
	w.Close()
	r := NewReader(bytes.NewReader(packed.Bytes()), nil)
	var got []byte
	buf := make([]byte, 313) // odd-size reads
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Error("small-read roundtrip mismatch")
	}
}

func TestStreamMaxFrameSize(t *testing.T) {
	// A corrupt header claiming a huge frame must be rejected before any
	// allocation: previously this allocated up to 1 GiB from 4 bytes.
	huge := []byte{0, 0, 0, 0x20, 1, 2, 3} // claims a 512 MiB frame
	_, err := io.ReadAll(NewReader(bytes.NewReader(huge), nil))
	if !errors.Is(err, ErrStream) {
		t.Errorf("512 MiB frame header: err = %v, want ErrStream", err)
	}

	// A valid stream read under a tiny cap fails typed, not with a panic
	// or a giant allocation.
	src := Float32Bytes(sampleFloats32(50000, 9))
	var packed bytes.Buffer
	w := NewWriter(&packed, SPspeed, 1<<16, nil)
	w.Write(src)
	w.Close()
	_, err = io.ReadAll(NewReader(bytes.NewReader(packed.Bytes()), &Options{MaxFrameSize: 64}))
	if !errors.Is(err, ErrStream) {
		t.Errorf("tiny MaxFrameSize: err = %v, want ErrStream", err)
	}

	// Raising the cap past the frame size decodes normally.
	got, err := io.ReadAll(NewReader(bytes.NewReader(packed.Bytes()), &Options{MaxFrameSize: 1 << 20}))
	if err != nil || !bytes.Equal(got, src) {
		t.Errorf("explicit MaxFrameSize decode failed: %v", err)
	}
}
