//go:build ignore

// Command gen regenerates the corrupt-container corpus in this directory.
// Every file is derived deterministically from a valid container so the
// corpus stays reproducible:
//
//	go run testdata/corrupt/gen.go
//
// Each file is a regression seed for a specific decoder hardening fix; see
// README.md here and the "Decoder safety guarantees" section of FORMAT.md.
package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"fpcompress"
	"fpcompress/internal/bitio"
)

func main() {
	dir := filepath.Dir(os.Args[0])
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		dir = "testdata/corrupt"
	}

	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = 300 + math.Sin(float64(i)/25)
	}
	valid, err := fpcompress.Compress(fpcompress.DPratio, fpcompress.Float64Bytes(vals), nil)
	if err != nil {
		panic(err)
	}

	clone := func(b []byte) []byte { return append([]byte(nil), b...) }

	files := map[string][]byte{}

	// Header damage.
	files["truncated-header.bin"] = clone(valid[:8])
	bm := clone(valid)
	bm[0] ^= 0xFF
	files["bad-magic.bin"] = bm
	bv := clone(valid)
	bv[4] = 9
	files["bad-version.bin"] = bv

	// Payload/size-table inconsistency.
	files["truncated-payload.bin"] = clone(valid[:len(valid)-3])
	files["trailing-garbage.bin"] = append(clone(valid), 0xDE, 0xAD, 0xBE, 0xEF, 0x00)

	// Bit rot inside a compressed chunk: either the transform rejects it or
	// the CRC32-C catches it; both must be errors, not panics.
	cr := clone(valid)
	cr[len(cr)/2] ^= 0xFF
	files["payload-bitflip.bin"] = cr

	// A flipped stored checksum over intact payload: decodes fully, then
	// fails the CRC32-C comparison.
	cm := clone(valid)
	cm[6] ^= 0xFF
	files["crc-mismatch.bin"] = cm

	// hand assembles a container with full control of the declared fields;
	// algorithm ID 1 (SPspeed) so decoding reaches past codec routing.
	raw := func(originalLen, chunkSize, chunkCount uint64, entries []uint64, payload []byte) []byte {
		out := []byte{'F', 'P', 'C', 'Z', 1, 1, 0, 0, 0, 0}
		out = bitio.AppendUvarint(out, originalLen)
		out = bitio.AppendUvarint(out, chunkSize)
		out = bitio.AppendUvarint(out, chunkCount)
		for _, e := range entries {
			out = bitio.AppendUvarint(out, e)
		}
		return append(out, payload...)
	}

	// A few bytes claiming a 1 TiB output: the decode-budget gate must
	// refuse the allocation (this was the original OOM repro).
	files["huge-original-len.bin"] = raw(1<<40, 1<<40, 1, []uint64{4<<1 | 1}, []byte{1, 2, 3, 4})

	// Declared chunk count far beyond the container's bytes: must be
	// rejected before the size-table allocation.
	files["huge-chunk-count.bin"] = raw(1<<40, 256, 1<<32, nil, nil)

	// Size-table entries whose sum wraps int64: the overflow-safe
	// accumulation must reject them (this was the negative-offset repro).
	files["size-table-overflow.bin"] = raw(512, 256, 2,
		[]uint64{(1 << 62) << 1, (1 << 62) << 1}, make([]byte, 16))

	// A structurally valid container whose single "compressed" chunk is a
	// uvarint declaring a huge transform decode length: the per-chunk
	// budget must refuse it before allocating.
	lie := bitio.AppendUvarint(nil, 1<<40)
	lie = append(lie, 0xFF, 0xFF)
	files["transform-declen-lie.bin"] = raw(256, 256, 1,
		[]uint64{uint64(len(lie))<<1 | 1}, lie)

	// Container v2 (per-chunk scheme table) seeds, derived from valid
	// Auto32/Auto64 containers. schemeOffset walks the header to the first
	// scheme-table byte; the table is not covered by the payload CRC, so a
	// mutated scheme byte survives parsing and must be caught at routing.
	schemeOffset := func(blob []byte) int {
		pos := 10
		var count uint64
		for i := 0; i < 3; i++ {
			v, n := bitio.Uvarint(blob[pos:])
			count = v
			pos += n
		}
		for i := uint64(0); i < count; i++ {
			_, n := bitio.Uvarint(blob[pos:])
			pos += n
		}
		return pos
	}

	auto64, err := fpcompress.Compress(fpcompress.Auto64, fpcompress.Float64Bytes(vals), nil)
	if err != nil {
		panic(err)
	}
	// A scheme ID no pipeline answers to: typed routing error, no panic.
	su := clone(auto64)
	su[schemeOffset(su)] = 99
	files["scheme-unknown-id.bin"] = su

	vals32 := make([]float32, 8192)
	for i := range vals32 {
		vals32[i] = float32(300 + math.Sin(float64(i)/25))
	}
	auto32, err := fpcompress.CompressFloat32s(fpcompress.Auto32, vals32, nil)
	if err != nil {
		panic(err)
	}
	// A 64-bit pipeline scheme (3 = DPspeed's chunk pipeline) recorded in a
	// 32-bit container: the word-size check must refuse the route.
	sw := clone(auto32)
	sw[schemeOffset(sw)] = 3
	files["scheme-word-mismatch.bin"] = sw

	// Hand-assembled v2 layouts (algorithm ID 8 = Auto64 so decoding
	// reaches the real scheme router).
	rawV2 := func(originalLen, chunkSize, chunkCount uint64, entries []uint64, schemes, payload []byte) []byte {
		out := []byte{'F', 'P', 'C', 'Z', 2, 8, 0, 0, 0, 0}
		out = bitio.AppendUvarint(out, originalLen)
		out = bitio.AppendUvarint(out, chunkSize)
		out = bitio.AppendUvarint(out, chunkCount)
		for _, e := range entries {
			out = bitio.AppendUvarint(out, e)
		}
		out = append(out, schemes...)
		return append(out, payload...)
	}

	// Two declared chunks but a one-byte scheme table: rejected with the
	// truncated-scheme-table error before any payload work.
	files["scheme-table-truncated.bin"] = rawV2(512, 256, 2,
		[]uint64{100<<1 | 1, 100<<1 | 1}, []byte{3}, make([]byte, 200))

	// A raw (uncompressed) chunk carrying a non-raw scheme byte: the flag
	// and the scheme table disagree, so the route is ambiguous — reject.
	files["scheme-raw-conflict.bin"] = rawV2(256, 256, 1,
		[]uint64{256 << 1}, []byte{3}, make([]byte, 256))

	// Container v3 (self-healing layout) seeds: per-chunk CRCs, checksummed
	// metadata, optional XOR parity. v3Layout walks the written layout to
	// the structural offsets the mutations below need: metaEnd (one past
	// the stored metadata CRC), the payload chunk offsets, and the start of
	// the parity region.
	v3Layout := func(blob []byte) (metaEnd int, chunkOffs []int, parityStart int) {
		flags := blob[10]
		pos := 11
		next := func() uint64 {
			v, n := bitio.Uvarint(blob[pos:])
			pos += n
			return v
		}
		next() // original length
		next() // chunk size
		count := next()
		groups := uint64(0)
		if flags&2 != 0 {
			pn := next()
			groups = (count + pn - 1) / pn
		}
		sizes := make([]int, count)
		for i := range sizes {
			sizes[i] = int(next() >> 1)
		}
		if flags&1 != 0 {
			pos += int(count) // per-chunk scheme table
		}
		pos += 4*int(count) + 4*int(groups) + 4 // CRC tables + metadata CRC
		metaEnd = pos
		chunkOffs = []int{pos}
		for _, s := range sizes {
			pos += s
			chunkOffs = append(chunkOffs, pos)
		}
		return metaEnd, chunkOffs, pos
	}

	// 32 KiB of data in 4 KiB chunks: 8 chunks, 2 parity groups of 4.
	v3opts := func(parity int) *fpcompress.Options {
		return &fpcompress.Options{ChunkSize: 4096, Integrity: true, Parity: parity}
	}
	v3i, err := fpcompress.CompressFloat32s(fpcompress.SPspeed, vals32, v3opts(0))
	if err != nil {
		panic(err)
	}
	v3p, err := fpcompress.CompressFloat32s(fpcompress.SPspeed, vals32, v3opts(4))
	if err != nil {
		panic(err)
	}

	// A flipped payload byte with no parity: the per-chunk CRC localizes it
	// (strict decode fails with the typed chunk error; partial decode
	// quarantines exactly that chunk and returns the rest).
	cc := clone(v3i)
	_, offs, _ := v3Layout(cc)
	cc[offs[1]] ^= 0xFF
	files["v3-chunk-crc-flip.bin"] = cc

	// The same flip with parity: strict decode must SUCCEED, transparently
	// reconstructing the chunk (see selfHealingSeeds in the corpus test).
	pr := clone(v3p)
	_, offs, _ = v3Layout(pr)
	pr[offs[2]] ^= 0xFF
	files["v3-parity-repairable.bin"] = pr

	// A flipped byte inside a parity block while the data is clean: benign
	// (strict decode succeeds without touching parity).
	pc := clone(v3p)
	_, _, pstart := v3Layout(pc)
	pc[pstart] ^= 0xFF
	files["v3-parity-chunk-corrupt.bin"] = pc

	// A torn tail: the writer died mid-payload, taking part of the last
	// chunk and all parity with it. Strict parse rejects; salvage parse
	// accepts and partial decode quarantines the missing range.
	tt := clone(v3p)
	_, offs, _ = v3Layout(tt)
	files["v3-torn-tail.bin"] = tt[:offs[len(offs)-1]-5]

	// A flipped bit in the stored metadata CRC: nothing after the header
	// can be trusted, so even partial decode refuses (typed header error).
	mc := clone(v3i)
	metaEnd, _, _ := v3Layout(mc)
	mc[metaEnd-1] ^= 0x01
	files["v3-meta-crc-flip.bin"] = mc

	// A mutated scheme byte in a v3 auto container: unlike v2 (where the
	// scheme table is unprotected and the mutation must be caught at
	// routing), v3's metadata CRC covers the table and rejects up front.
	auto32v3, err := fpcompress.CompressFloat32s(fpcompress.Auto32, vals32, v3opts(0))
	if err != nil {
		panic(err)
	}
	sv := clone(auto32v3)
	if sv[10]&1 == 0 {
		panic("expected a scheme table in the v3 auto container")
	}
	pos := 11
	var cnt uint64
	for i := 0; i < 3; i++ { // originalLen, chunkSize, chunkCount
		v, n := bitio.Uvarint(sv[pos:])
		cnt = v
		pos += n
	}
	for i := uint64(0); i < cnt; i++ { // size table
		_, n := bitio.Uvarint(sv[pos:])
		pos += n
	}
	sv[pos] ^= 0xFF // first scheme byte
	files["v3-scheme-bitflip.bin"] = sv

	// Container v4 (windowed FCM) seeds: v4 negotiates the window through
	// the flags byte, so flag damage must be caught at parse time.
	wopts := &fpcompress.Options{WindowedFCM: true}
	w64, err := fpcompress.Compress(fpcompress.DPratio, fpcompress.Float64Bytes(vals), wopts)
	if err != nil {
		panic(err)
	}
	wauto, err := fpcompress.Compress(fpcompress.Auto64, fpcompress.Float64Bytes(vals), wopts)
	if err != nil {
		panic(err)
	}

	// A v4 container whose windowed flag is cleared: v4 exists only to
	// carry that flag, so the version/flag combination is contradictory
	// and must be rejected up front (no guessing which codec applies).
	nw := clone(w64)
	nw[10] &^= 1 << 2
	files["v4-no-window-flag.bin"] = nw

	// A v4 header cut off right before its mandatory flags byte: the
	// window negotiation is unreadable, so parsing must fail rather than
	// fall back to whole-input semantics.
	files["v4-flag-truncated.bin"] = clone(w64[:10])

	// A windowed Auto64 container with the scheme-table flag cleared while
	// the table bytes remain in the stream: the flag and the layout
	// disagree, so the size table walks into scheme bytes and the payload
	// length no longer adds up — reject, never panic.
	sc := clone(wauto)
	if sc[10]&1 == 0 {
		panic("expected a scheme table in the windowed auto container")
	}
	sc[10] &^= 1
	files["v4-scheme-flag-conflict.bin"] = sc

	// v4 declares parity without integrity: parity groups are only
	// addressable through the per-chunk CRC tables, so the combination is
	// structurally meaningless and must be refused.
	pf := clone(w64)
	pf[10] |= 1 << 1
	files["v4-parity-no-integrity.bin"] = pf

	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("%-28s %5d bytes\n", name, len(data))
	}
}
