package fpcompress

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"fpcompress/internal/container"
)

// windowedOpts is the per-test Options literal for windowed compression;
// tests that also need chunk sizing or parallelism build their own.
func windowedOpts() *Options { return &Options{WindowedFCM: true} }

// TestWindowedRoundtrip pins the core windowed contract: DPratio and
// Auto64 with Options.WindowedFCM round-trip bit-exactly, the container
// carries version 4 with the windowed flag, and plain Decompress (no
// options) auto-detects the mode.
func TestWindowedRoundtrip(t *testing.T) {
	for _, alg := range []Algorithm{DPratio, Auto64} {
		src := Float64Bytes(sampleFloats64(40000, 7))
		blob, err := Compress(alg, src, windowedOpts())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if blob[4] != 4 {
			t.Errorf("%v: container version %d, want 4", alg, blob[4])
		}
		if w, err := container.IsWindowed(blob); err != nil || !w {
			t.Errorf("%v: IsWindowed = (%v, %v), want (true, nil)", alg, w, err)
		}
		back, err := Decompress(blob, nil)
		if err != nil || !bytes.Equal(back, src) {
			t.Fatalf("%v: windowed roundtrip failed: %v", alg, err)
		}
		// The default (whole-input) container must not be windowed.
		def, err := Compress(alg, src, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w, err := container.IsWindowed(def); err != nil || w {
			t.Errorf("%v: default container reports windowed (%v, %v)", alg, w, err)
		}
	}
}

// TestWindowedWrongAlgorithm pins the typed error: WindowedFCM only
// applies to the algorithms with an FCM stage to window (DPratio, Auto64).
func TestWindowedWrongAlgorithm(t *testing.T) {
	src := Float64Bytes(sampleFloats64(1000, 3))
	for _, alg := range []Algorithm{SPspeed, SPratio, SPbalance, DPspeed, DPbalance, Auto32} {
		if _, err := Compress(alg, src, windowedOpts()); !errors.Is(err, ErrWindowedAlgorithm) {
			t.Errorf("%v: got %v, want ErrWindowedAlgorithm", alg, err)
		}
	}
}

// TestWindowedRandomAccess is the acceptance test for the carve-out drop:
// windowed DPratio and Auto64 containers open for random access (the
// default DPratio still refuses, pinned by TestRandomAccessDPratioRefused)
// and arbitrary ReadAt ranges and typed Float64At reads come back exact.
func TestWindowedRandomAccess(t *testing.T) {
	vals := sampleFloats64(60000, 21)
	src := Float64Bytes(vals)
	for _, alg := range []Algorithm{DPratio, Auto64} {
		blob, err := Compress(alg, src, windowedOpts())
		if err != nil {
			t.Fatal(err)
		}
		ra, err := OpenRandomAccess(blob, nil)
		if err != nil {
			t.Fatalf("%v: OpenRandomAccess on windowed container: %v", alg, err)
		}
		if ra.Len() != len(src) {
			t.Fatalf("%v: Len %d, want %d", alg, ra.Len(), len(src))
		}
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 30; trial++ {
			off := rng.Intn(len(src))
			n := rng.Intn(min(30000, len(src)-off)) + 1
			buf := make([]byte, n)
			if _, err := ra.ReadAt(buf, int64(off)); err != nil {
				t.Fatalf("%v trial %d: %v", alg, trial, err)
			}
			if !bytes.Equal(buf, src[off:off+n]) {
				t.Fatalf("%v trial %d: range [%d,%d) wrong", alg, trial, off, off+n)
			}
		}
		got, err := ra.Float64At(12345, 200)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != vals[12345+i] {
				t.Fatalf("%v: Float64At value %d = %v, want %v", alg, i, v, vals[12345+i])
			}
		}
		// The io.ReaderAt contract holds, so io.SectionReader composes.
		sec := io.NewSectionReader(ra, 8000, 1600)
		sbuf, err := io.ReadAll(sec)
		if err != nil || !bytes.Equal(sbuf, src[8000:9600]) {
			t.Fatalf("%v: SectionReader read failed: %v", alg, err)
		}
	}
}

// TestWindowedPartialDecode pins degraded-mode behavior for v4: an intact
// windowed container partial-decodes with an all-OK report, and a flipped
// payload byte is localized — strict decode fails, ReadAtPartial
// quarantines rather than failing, and the undamaged chunks stay exact.
func TestWindowedPartialDecode(t *testing.T) {
	src := Float64Bytes(sampleFloats64(30000, 5))
	blob, err := Compress(DPratio, src, windowedOpts())
	if err != nil {
		t.Fatal(err)
	}
	dec, rep, err := DecompressPartial(blob, nil)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("partial decode of intact windowed container: %v", err)
	}
	if !rep.AllOK() {
		t.Fatalf("intact container reported damage: %s", rep.Summary())
	}

	// Windowed + integrity: v4 with per-chunk CRCs localizes a flip.
	iblob, err := Compress(DPratio, src, &Options{WindowedFCM: true, Integrity: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), iblob...)
	bad[len(bad)-len(bad)/4] ^= 0xFF
	if _, err := Decompress(bad, nil); err == nil {
		t.Fatal("strict decode accepted a damaged windowed container")
	}
	pdec, prep, err := DecompressPartial(bad, nil)
	if err != nil {
		t.Fatalf("partial decode of damaged windowed container: %v", err)
	}
	if c := prep.Counts(); c.Quarantined != 1 {
		t.Fatalf("report = %s, want exactly 1 quarantined chunk", prep.Summary())
	}
	for i, st := range prep.States {
		if st != ChunkOK {
			continue
		}
		lo, hi := prep.Span(i)
		if !bytes.Equal(pdec[lo:hi], src[lo:hi]) {
			t.Fatalf("intact chunk %d decoded wrong under damage", i)
		}
	}
}

// TestWindowedParallel pins that windowed containers are chunk-parallel in
// both directions: with Parallel workers and many chunks the output still
// round-trips bit-exactly and stays byte-identical to the single-threaded
// encoding (the engine must not let worker scheduling leak into the
// bytes).
func TestWindowedParallel(t *testing.T) {
	src := Float64Bytes(sampleFloats64(200000, 13))
	serial, err := Compress(DPratio, src, &Options{WindowedFCM: true, ChunkSize: 8192, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compress(DPratio, src, &Options{WindowedFCM: true, ChunkSize: 8192, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, par) {
		t.Fatal("parallel windowed encoding differs from serial")
	}
	back, err := Decompress(par, &Options{Parallelism: 8})
	if err != nil || !bytes.Equal(back, src) {
		t.Fatalf("parallel windowed decode failed: %v", err)
	}
}

// TestWindowedStream pins the streaming API: a Writer with WindowedFCM
// produces a windowed container and the Reader decodes it transparently.
func TestWindowedStream(t *testing.T) {
	src := Float64Bytes(sampleFloats64(50000, 17))
	var buf bytes.Buffer
	w := NewWriter(&buf, DPratio, 0, windowedOpts())
	for i := 0; i < len(src); i += 10000 {
		if _, err := w.Write(src[i:min(i+10000, len(src))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Each frame is a 4-byte length plus one container; the first frame's
	// container must carry the windowed flag.
	if wf, err := container.IsWindowed(buf.Bytes()[4:]); err != nil || !wf {
		t.Fatalf("stream frame not windowed: (%v, %v)", wf, err)
	}
	back, err := io.ReadAll(NewReader(bytes.NewReader(buf.Bytes()), nil))
	if err != nil || !bytes.Equal(back, src) {
		t.Fatalf("stream roundtrip failed: %v", err)
	}
}
